#include "scenario.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "dapple/apps/cardgame.hpp"
#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/liveness/liveness.hpp"
#include "dapple/services/recovery/recovery.hpp"
#include "dapple/services/tokens/token_manager.hpp"
#include "dapple/testkit/virtual_clock.hpp"
#include "dapple/util/rng.hpp"

namespace dapple::testkit {

namespace {

/// Canonical digest accumulator.  Everything observable about the run is
/// folded in as text, so a digest mismatch pinpoints a behavioural
/// divergence, not a formatting one.
class Digest {
 public:
  void add(std::string_view s) {
    // DAPPLE_FUZZ_DUMP=1 prints every digest line: diffing two runs of the
    // same seed pinpoints the exact divergence behind a digest mismatch.
    static const bool dump = std::getenv("DAPPLE_FUZZ_DUMP") != nullptr;
    if (dump) std::fprintf(stderr, "digest| %.*s\n",
                           static_cast<int>(s.size()), s.data());
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ull;
    }
    h_ ^= '\n';
    h_ *= 0x100000001b3ull;
  }

  template <typename... Args>
  void addf(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    add(os.str());
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

struct Oracles {
  std::vector<std::string> failures;

  template <typename... Args>
  void fail(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    failures.push_back(os.str());
  }
};

constexpr const char* kMeshKind = "fz.mesh";

/// The generated shape of one scenario.  Everything below derives from the
/// seed alone.
struct Shape {
  std::size_t n = 0;           // mesh dapplets
  LinkParams link;
  // 0 tokens, 1 cardgame, 2 crash/eviction, 3 recovery, 4 token leases
  int module = 0;
  // Wire codec for the whole stack (half the seeds each way).
  WireCodec codec = WireCodec::kText;
  std::size_t rounds = 0;      // mesh messages per ordered pair
  struct Partition {
    std::uint32_t hostA = 0, hostB = 0;
    Duration at{}, heal{};
  };
  std::vector<Partition> partitions;
  // modules 2..4: which mesh member is crash-stopped, and when.
  std::size_t victim = 0;
  Duration crashAt{};
  // modules 3 and 4: kill-restart delay between the crash and the reboot.
  Duration restartDelay{};
};

Shape generate(std::uint64_t seed) {
  Rng rng(seed ^ 0xf00dfeedull);
  Shape s;
  s.n = 2 + rng.below(3);  // 2..4
  static constexpr double kLoss[] = {0.0, 0.05, 0.10, 0.20};
  static constexpr double kDup[] = {0.0, 0.05};
  s.link = LinkParams{microseconds(100 + rng.below(900)),
                      microseconds(rng.below(2000)),
                      kLoss[rng.below(4)], kDup[rng.below(2)]};
  s.module = static_cast<int>(seed % 5);
  // Derived from the seed directly (not the rng stream, so pre-existing
  // seeds keep their shapes) and orthogonal to the module choice.
  s.codec = ((seed / 5) % 2) ? WireCodec::kBinary : WireCodec::kText;
  s.rounds = 5 + rng.below(10);
  // Partitions always heal, well inside the 10s delivery timeout, so they
  // degrade channels without killing them.
  const std::size_t nparts = rng.below(3);  // 0..2
  for (std::size_t p = 0; p < nparts && s.n >= 2; ++p) {
    Shape::Partition part;
    part.hostA = static_cast<std::uint32_t>(1 + rng.below(s.n));
    part.hostB = static_cast<std::uint32_t>(1 + rng.below(s.n));
    if (part.hostA == part.hostB) {
      part.hostB = 1 + part.hostA % static_cast<std::uint32_t>(s.n);
    }
    part.at = milliseconds(50 + rng.below(400));
    part.heal = part.at + milliseconds(200 + rng.below(1800));
    s.partitions.push_back(part);
  }
  if (s.module == 2) {
    s.n = std::max<std::size_t>(s.n, 3);  // need survivors + a victim
    s.victim = 1 + rng.below(s.n - 1);    // never member 0
    s.crashAt = milliseconds(150 + rng.below(300));
  } else if (s.module == 3 || s.module == 4) {
    s.victim = 1 + rng.below(s.n - 1);  // member 0 is the feeder / a survivor
    s.crashAt = milliseconds(100 + rng.below(300));
    s.restartDelay = milliseconds(50 + rng.below(400));
  }
  return s;
}

const char* moduleName(int module) {
  switch (module) {
    case 0: return "tokens";
    case 1: return "cardgame";
    case 2: return "eviction";
    case 3: return "recovery";
    default: return "lease";
  }
}

// ---- module 3 (crash recovery) helpers ------------------------------------

// Enough paced items (50ms of virtual time each) that the seed-chosen crash
// instant — bounded by the pre-crash mesh rounds plus crashAt, well under a
// second of virtual time — always lands mid-stream.  A crash after the sum
// role finished would leave the feeder unackable: the final ack dies with
// the process and a completed role is never re-run.
constexpr std::int64_t kRecItems = 24;
constexpr std::int64_t kRecTokens = 4;

/// First colour whose home is manager index 1 of 2 (the victim), so the
/// restart actually owns a token pool worth conserving.
std::string victimHomedColor() {
  for (int i = 0; i < 1000; ++i) {
    const std::string c = "t" + std::to_string(i);
    if (TokenManager::homeOfColor(c, 2) == 1) return c;
  }
  return "t0";
}

/// Scratch directory for one run's durable state.  Unique per process and
/// per invocation; never folded into any digest.
std::string recoveryScratchDir() {
  static std::atomic<int> counter{0};
  const auto path = std::filesystem::temp_directory_path() /
                    ("dapple_fuzz_rec_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path.string();
}

/// One app, two roles, dispatched on the member's "role" param.  The feeder
/// streams kRecItems numbered items until each is acked; the "sum" member
/// folds them into durable state exactly once (the journaled lastSeq dedups
/// redelivery across the kill-restart), pacing applies in virtual time so
/// the seed-chosen crash instant lands mid-stream.
Value recRoleParams(const std::string& role) {
  ValueMap params;
  params["role"] = Value(role);
  return Value(std::move(params));
}

void registerRecoveryApp(SessionAgent& agent) {
  agent.registerApp("fz.recover", [](SessionContext& ctx) {
    const std::string role = ctx.params().at("role").asString();
    if (role == "feeder") {
      Outbox& out = ctx.outbox("out");
      Inbox& ack = ctx.inbox("ack");
      std::int64_t next = 1;
      while (next <= kRecItems && !ctx.stopToken().stop_requested()) {
        DataMessage item("item");
        item.set("seq", Value(static_cast<long long>(next)));
        try {
          out.send(item);
        } catch (const Error&) {
          out.reset();  // victim down; the rejoin WIRE re-points us
        }
        try {
          if (auto del = ack.receiveFor(milliseconds(200))) {
            const auto* msg =
                dynamic_cast<const DataMessage*>(del->message.get());
            if (msg != nullptr && msg->kind() == "ack") {
              next = std::max<std::int64_t>(next, msg->get("seq").asInt() + 1);
            }
          }
        } catch (const PeerDownError&) {
          // Eviction notice: keep retrying until the member rejoins.
        }
      }
      ctx.setResult(Value(static_cast<long long>(next - 1)));
      return;
    }
    Inbox& in = ctx.inbox("in");
    Outbox& out = ctx.outbox("out");
    StateView& state = ctx.state();
    std::int64_t last = state.getOr("fz.lastSeq", Value(0)).asInt();
    std::int64_t sum = state.getOr("fz.sum", Value(0)).asInt();
    if (last > 0) {
      // Restart: the pre-crash acks died with the old process.  Re-ack the
      // recovered progress so the feeder resumes without waiting to probe.
      DataMessage ackMsg("ack");
      ackMsg.set("seq", Value(static_cast<long long>(last)));
      try {
        out.send(ackMsg);
      } catch (const Error&) {
        out.reset();
      }
    }
    while (last < kRecItems && !ctx.stopToken().stop_requested()) {
      std::optional<Delivery> del;
      try {
        del = in.receiveFor(milliseconds(200));
      } catch (const PeerDownError&) {
        continue;
      }
      if (!del) continue;
      const auto* msg = dynamic_cast<const DataMessage*>(del->message.get());
      if (msg == nullptr || msg->kind() != "item") continue;
      const std::int64_t seq = msg->get("seq").asInt();
      if (seq == last + 1) {  // exactly-once apply, paced in virtual time
        ctx.dapplet().clockSource().sleepFor(milliseconds(50));
        sum += seq;
        last = seq;
        state.put("fz.sum", Value(static_cast<long long>(sum)));
        state.put("fz.lastSeq", Value(static_cast<long long>(last)));
      }
      if (seq <= last) {
        DataMessage ackMsg("ack");
        ackMsg.set("seq", Value(static_cast<long long>(last)));
        try {
          out.send(ackMsg);
        } catch (const Error&) {
          out.reset();
        }
      }
    }
    ctx.setResult(Value(static_cast<long long>(sum)));
  });
}

}  // namespace

std::string reproLine(std::uint64_t seed) {
  return "dapple_fuzz --seed " + std::to_string(seed);
}

namespace {
/// DAPPLE_FUZZ_TRACE=1: print stage transitions (hang localisation).
void mark(const char* stage) {
  static const bool on = std::getenv("DAPPLE_FUZZ_TRACE") != nullptr;
  if (on) {
    std::fprintf(stderr, "stage| %s\n", stage);
    std::fflush(stderr);
  }
}
}  // namespace

ScenarioResult runScenario(std::uint64_t seed,
                           const ScenarioOptions& options) {
  const Shape shape = generate(seed);
  Rng rng(seed ^ 0x5eedull);  // workload-side randomness
  Digest digest;
  Oracles oracles;

  VirtualClock clock;
  SimNetwork::Options netOpts;
  netOpts.clock = &clock;
  netOpts.hashedLinkRandomness = true;  // schedule-independent link faults
  SimNetwork net(seed, netOpts);
  net.setDefaultLink(shape.link);

  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.maxRto = milliseconds(120);
  cfg.reliable.deliveryTimeout = seconds(10);
  // Piggybacked ack blocks splice ack state into DATA frame bytes, which
  // would make the content-hashed link faults depend on ack timing (a
  // schedule artifact).  Standalone coalesced acks keep DATA bytes — and so
  // the fault pattern and digest — schedule-independent; the coalescing
  // machinery itself (ackEvery/ackDelay defaults) stays fully exercised.
  cfg.reliable.ackPiggyback = false;
  cfg.liveness.heartbeatInterval = milliseconds(25);
  cfg.liveness.suspectTimeout = milliseconds(300);
  // The codec changes the bytes on the wire (and therefore the
  // content-hashed fault schedule) but must never change an outcome — it is
  // deliberately NOT folded into the digest, and the smoke suite asserts
  // the digest is codec-invariant per seed.
  cfg.wireCodec = options.codec.value_or(shape.codec);
  if (options.canaryDisableRetransmit) {
    // Canary bug: the first transmission is the only one.  Lossy seeds must
    // now fail the delivery oracle.  The adaptive sender must be fully
    // pinned: minRto keeps the SRTT estimator from collapsing the RTO back
    // under the horizon, and fastRetransmitDups keeps dup-SACK evidence
    // from resurrecting lost frames without the timer.
    cfg.reliable.rto = seconds(30);
    cfg.reliable.minRto = seconds(30);
    cfg.reliable.maxRto = seconds(30);
    cfg.reliable.fastRetransmitDups = UINT32_MAX;
    cfg.reliable.deliveryTimeout = seconds(20);
  }

  digest.addf("shape n=", shape.n, " delay=", shape.link.delay.count(),
              " jitter=", shape.link.jitter.count(),
              " loss=", shape.link.lossProb, " dup=", shape.link.dupProb,
              " module=", moduleName(shape.module),
              " rounds=", shape.rounds);

  mark("dapplets");
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<Inbox*> meshIn;
  for (std::size_t i = 0; i < shape.n; ++i) {
    cfg.host = static_cast<std::uint32_t>(i + 1);
    dapplets.push_back(
        std::make_unique<Dapplet>(net, "fz" + std::to_string(i), cfg));
    meshIn.push_back(&dapplets.back()->createInbox("fz.mesh"));
  }
  cfg.host = static_cast<std::uint32_t>(shape.n + 1);

  // Full-mesh outboxes, one per ordered pair.
  std::map<std::pair<std::size_t, std::size_t>, Outbox*> meshOut;
  for (std::size_t i = 0; i < shape.n; ++i) {
    for (std::size_t j = 0; j < shape.n; ++j) {
      if (i == j) continue;
      Outbox& out = dapplets[i]->createOutbox();
      out.add(meshIn[j]->ref());
      meshOut[{i, j}] = &out;
    }
  }

  mark("module-setup");
  // ---- module setup (before faults start) --------------------------------
  std::vector<std::unique_ptr<TokenManager>> managers;
  std::vector<std::unique_ptr<LivenessMonitor>> monitors;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  std::unique_ptr<Dapplet> director;
  std::unique_ptr<LivenessMonitor> directorMonitor;
  std::unique_ptr<Initiator> initiator;
  Directory directory;
  std::string sessionId;
  constexpr std::int64_t kGold = 4, kSilver = 3;
  // Module 3 (crash recovery): the victim's first-boot durable handles, the
  // two token managers, and — once the kill-restart fires — the restarted
  // process, which lives outside the mesh `dapplets` vector at a fresh host.
  std::unique_ptr<recovery::DurableState> recDurable;
  std::unique_ptr<TokenManager> feederTok, victimTok;
  std::string recoveryDir, recColor;
  std::unique_ptr<Dapplet> victim2;
  std::unique_ptr<recovery::DurableState> recDurable2;
  std::unique_ptr<SessionAgent> victimAgent2;
  std::unique_ptr<TokenManager> victimTok2;
  bool restarted = false;
  std::uint64_t recoveryDigestOut = 0;
  // Module 4 (token leases): the shared credit-caching config; the victim's
  // copy additionally journals so the kill-restart can re-lease.
  TokenConfig leaseTokCfg;

  if (shape.module == 0) {
    for (std::size_t i = 0; i < shape.n; ++i) {
      managers.push_back(std::make_unique<TokenManager>(*dapplets[i]));
    }
    std::vector<InboxRef> refs;
    for (auto& m : managers) refs.push_back(m->ref());
    for (std::size_t i = 0; i < shape.n; ++i) {
      TokenBag mine;
      if (TokenManager::homeOfColor("gold", shape.n) == i) {
        mine["gold"] = kGold;
      }
      if (TokenManager::homeOfColor("silver", shape.n) == i) {
        mine["silver"] = kSilver;
      }
      managers[i]->attach(refs, i, mine);
    }
  } else if (shape.module == 1) {
    for (std::size_t i = 0; i < shape.n; ++i) {
      agents.push_back(std::make_unique<SessionAgent>(*dapplets[i]));
      apps::registerCardGameApp(*agents.back());
      directory.put("fz" + std::to_string(i), agents.back()->controlRef());
    }
    director = std::make_unique<Dapplet>(net, "fzdir", cfg);
    initiator = std::make_unique<Initiator>(*director);
  } else if (shape.module == 3) {
    // Two-member durable pipeline riding the mesh: fz0 feeds, the victim
    // folds items into WAL-backed state and homes a journaled token pool.
    // No failure detector — the restart itself must converge the session.
    recoveryDir = recoveryScratchDir();
    recColor = victimHomedColor();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets[0]));
    registerRecoveryApp(*agents[0]);
    recDurable = std::make_unique<recovery::DurableState>(
        *dapplets[shape.victim], recoveryDir);
    SessionAgent::Config vcfg;
    vcfg.store = &recDurable->store();
    vcfg.durableSessions = true;
    vcfg.incarnation = recDurable->incarnation();
    agents.push_back(
        std::make_unique<SessionAgent>(*dapplets[shape.victim], vcfg));
    registerRecoveryApp(*agents[1]);
    // The feeder requests tokens of a colour it already holds; keep the
    // deadlock prober's edge-chasing out of that legitimate wait.
    TokenConfig fTok;
    fTok.probeDelay = seconds(60);
    feederTok = std::make_unique<TokenManager>(*dapplets[0], fTok);
    TokenConfig vTok;
    vTok.journal = &recDurable->store();
    victimTok = std::make_unique<TokenManager>(*dapplets[shape.victim], vTok);
    feederTok->attach({feederTok->ref(), victimTok->ref()}, 0, {});
    victimTok->attach({feederTok->ref(), victimTok->ref()}, 1,
                      {{recColor, kRecTokens}});
    director = std::make_unique<Dapplet>(net, "fzdir", cfg);
    initiator = std::make_unique<Initiator>(*director);
  } else if (shape.module == 4) {
    // Credit/lease workload (DESIGN.md §14): every member caches borrowed
    // credit under leases; the victim journals its manager and is
    // kill-restarted mid-run, so incarnation-guarded re-lease, survivor
    // rewire, and the home-side loan-retire path all get fuzzed.
    recoveryDir = recoveryScratchDir();
    // Blocked-on-recall waits are legitimate: keep deadlock probes out.
    leaseTokCfg.probeDelay = seconds(60);
    leaseTokCfg.probeInterval = seconds(60);
    leaseTokCfg.creditBatch = 2;
    // Long enough (virtual time) that neither a partition (≤2.5s) nor the
    // kill-restart window expires a live member's loan: the only reclaims
    // are the deliberate ones, keeping the outcome digest schedule-stable.
    leaseTokCfg.leaseDuration = seconds(5);
    for (std::size_t i = 0; i < shape.n; ++i) {
      TokenConfig mcfg = leaseTokCfg;
      if (i == shape.victim) {
        recDurable = std::make_unique<recovery::DurableState>(*dapplets[i],
                                                              recoveryDir);
        mcfg.journal = &recDurable->store();
        mcfg.incarnation = recDurable->incarnation();
      }
      managers.push_back(std::make_unique<TokenManager>(*dapplets[i], mcfg));
    }
    std::vector<InboxRef> refs;
    for (auto& m : managers) refs.push_back(m->ref());
    for (std::size_t i = 0; i < shape.n; ++i) {
      TokenBag mine;
      if (TokenManager::homeOfColor("gold", shape.n) == i) {
        mine["gold"] = kGold;
      }
      if (TokenManager::homeOfColor("silver", shape.n) == i) {
        mine["silver"] = kSilver;
      }
      managers[i]->attach(refs, i, mine);
    }
    // Pre-crash loans: the victim's journaled holding must survive the
    // restart; member 0's (never the victim) must stay live throughout it.
    try {
      managers[shape.victim]->request({{"gold", 1}}, seconds(30));
      managers[0]->request({{"silver", 1}}, seconds(30));
    } catch (const Error& e) {
      oracles.fail("lease: pre-crash request failed: ", e.what());
    }
  } else {
    for (std::size_t i = 0; i < shape.n; ++i) {
      monitors.push_back(std::make_unique<LivenessMonitor>(*dapplets[i]));
      SessionAgent::Config acfg;
      acfg.monitor = monitors.back().get();
      agents.push_back(std::make_unique<SessionAgent>(*dapplets[i], acfg));
      const bool isVictim = i == shape.victim;
      agents.back()->registerApp("fz.evict", [isVictim](SessionContext& ctx) {
        if (isVictim) {
          try {
            (void)ctx.inbox("in").receiveFor(seconds(60));
          } catch (const Error&) {
          }
          return;
        }
        ValueMap r;
        try {
          (void)ctx.inbox("in").receiveFor(seconds(60));
          r["sawPeerDown"] = Value(false);
        } catch (const PeerDownError&) {
          r["sawPeerDown"] = Value(true);
        }
        ctx.setResult(Value(std::move(r)));
      });
      directory.put("fz" + std::to_string(i), agents.back()->controlRef());
    }
    director = std::make_unique<Dapplet>(net, "fzdir", cfg);
    directorMonitor = std::make_unique<LivenessMonitor>(*director);
    initiator = std::make_unique<Initiator>(*director, directorMonitor.get());
  }

  // ---- fault schedule (exact virtual times) ------------------------------
  for (const auto& part : shape.partitions) {
    clock.after(part.at, [&net, part] {
      net.setPartition(part.hostA, part.hostB, true);
    });
    clock.after(part.heal, [&net, part] {
      net.setPartition(part.hostA, part.hostB, false);
    });
  }

  mark("establish");
  // ---- establish sessions ------------------------------------------------
  if (shape.module == 1) {
    std::vector<std::string> players;
    for (std::size_t i = 0; i < shape.n; ++i) {
      players.push_back("fz" + std::to_string(i));
    }
    auto plan = apps::cardGamePlan(directory, players, 200, seed);
    plan.phaseTimeout = seconds(30);
    plan.setupAttempts = 8;
    auto result = initiator->establish(plan);
    if (!result.ok) {
      oracles.fail("cardgame: session setup failed");
    }
    sessionId = result.sessionId;
  } else if (shape.module == 2) {
    Initiator::Plan plan;
    plan.app = "fz.evict";
    for (std::size_t i = 0; i < shape.n; ++i) {
      plan.members.push_back(
          Initiator::member(directory, "fz" + std::to_string(i), {"in"}));
    }
    const std::string victimName = "fz" + std::to_string(shape.victim);
    for (std::size_t i = 0; i < shape.n; ++i) {
      if (i == shape.victim) continue;
      plan.edges.push_back(
          {victimName, "feed", "fz" + std::to_string(i), "in"});
    }
    plan.phaseTimeout = seconds(30);
    plan.setupAttempts = 8;
    auto result = initiator->establish(plan);
    if (!result.ok) {
      oracles.fail("eviction: session setup failed");
    }
    sessionId = result.sessionId;
  } else if (shape.module == 3) {
    Initiator::Plan plan;
    plan.app = "fz.recover";
    Initiator::MemberPlan feeder;
    feeder.name = "feeder";
    feeder.control = agents[0]->controlRef();
    feeder.inboxes = {"ack"};
    feeder.params = recRoleParams("feeder");
    Initiator::MemberPlan victim;
    victim.name = "victim";
    victim.control = agents[1]->controlRef();
    victim.inboxes = {"in"};
    victim.writeKeys = {"fz.sum", "fz.lastSeq"};
    victim.params = recRoleParams("sum");
    plan.members = {feeder, victim};
    plan.edges = {{"feeder", "out", "victim", "in"},
                  {"victim", "out", "feeder", "ack"}};
    plan.phaseTimeout = seconds(30);
    plan.setupAttempts = 8;
    auto result = initiator->establish(plan);
    if (!result.ok) {
      oracles.fail("recovery: session setup failed");
    } else {
      // Spread the victim-homed pool before the kill: the restart must
      // restore this grant from the journal, not re-mint the pool.
      try {
        feederTok->request({{recColor, 2}}, seconds(30));
      } catch (const Error& e) {
        oracles.fail("recovery: pre-crash token request failed: ", e.what());
      }
    }
    sessionId = result.sessionId;
  }

  mark("workload");
  // ---- mesh workload (interleaved with the fault schedule) ---------------
  // Channels that may legitimately lose messages: any touching the crashed
  // member.  Everything else must deliver fully and in order.
  std::set<std::size_t> dead;
  bool crashed = false;
  for (std::size_t round = 0; round < shape.rounds; ++round) {
    if (shape.module == 2 && !crashed && round * 2 >= shape.rounds) {
      // Crash mid-workload, at a seed-chosen virtual instant.
      clock.sleepFor(shape.crashAt);
      dapplets[shape.victim]->crash();
      dead.insert(shape.victim);
      crashed = true;
    }
    if (shape.module == 3 && !options.suppressKillRestart && !crashed &&
        round * 2 >= shape.rounds) {
      // Kill-restart: crash cold, destroy the whole process (agent, token
      // manager, durable handles), then after a seed-chosen delay reboot
      // from the same directory at a fresh address and rejoin.
      clock.sleepFor(shape.crashAt);
      dapplets[shape.victim]->crash();
      dead.insert(shape.victim);
      crashed = true;
      agents[1].reset();
      victimTok.reset();
      recDurable.reset();
      dapplets[shape.victim].reset();
      clock.sleepFor(shape.restartDelay);
      DappletConfig vcfg = cfg;
      vcfg.host = static_cast<std::uint32_t>(shape.n + 2);
      victim2 = std::make_unique<Dapplet>(
          net, "fz" + std::to_string(shape.victim), vcfg);
      recDurable2 =
          std::make_unique<recovery::DurableState>(*victim2, recoveryDir);
      if (!recDurable2->info().recovered ||
          recDurable2->incarnation() != 2) {
        oracles.fail("recovery: restart did not recover durable state");
      }
      SessionAgent::Config acfg;
      acfg.store = &recDurable2->store();
      acfg.durableSessions = true;
      acfg.incarnation = recDurable2->incarnation();
      victimAgent2 = std::make_unique<SessionAgent>(*victim2, acfg);
      registerRecoveryApp(*victimAgent2);
      TokenConfig tcfg;
      tcfg.journal = &recDurable2->store();
      victimTok2 = std::make_unique<TokenManager>(*victim2, tcfg);
      victimTok2->attach({feederTok->ref(), victimTok2->ref()}, 1,
                         {{recColor, kRecTokens}});
      // Zero sessions journaled is legitimate: the role may have completed
      // (and been unlinked) before the crash landed.  The outcome oracles
      // below are crash-placement-independent either way.
      victimAgent2->rejoinPersisted();
      restarted = true;
    }
    if (shape.module == 4 && !options.suppressKillRestart && !crashed &&
        round * 2 >= shape.rounds) {
      // Lease-module kill-restart: crash cold, drop every handle, reboot
      // from the journal at a fresh address.  attach() re-leases the
      // journaled loans under incarnation 2, and every survivor rewires.
      clock.sleepFor(shape.crashAt);
      dapplets[shape.victim]->crash();
      dead.insert(shape.victim);
      crashed = true;
      managers[shape.victim].reset();
      recDurable.reset();
      dapplets[shape.victim].reset();
      clock.sleepFor(shape.restartDelay);
      DappletConfig vcfg = cfg;
      vcfg.host = static_cast<std::uint32_t>(shape.n + 2);
      victim2 = std::make_unique<Dapplet>(
          net, "fz" + std::to_string(shape.victim), vcfg);
      recDurable2 =
          std::make_unique<recovery::DurableState>(*victim2, recoveryDir);
      if (!recDurable2->info().recovered ||
          recDurable2->incarnation() != 2) {
        oracles.fail("lease: restart did not recover durable state");
      }
      TokenConfig tcfg = leaseTokCfg;
      tcfg.journal = &recDurable2->store();
      tcfg.incarnation = recDurable2->incarnation();
      victimTok2 = std::make_unique<TokenManager>(*victim2, tcfg);
      std::vector<InboxRef> refs;
      for (std::size_t i = 0; i < shape.n; ++i) {
        refs.push_back(i == shape.victim ? victimTok2->ref()
                                         : managers[i]->ref());
      }
      TokenBag mine;
      if (TokenManager::homeOfColor("gold", shape.n) == shape.victim) {
        mine["gold"] = kGold;
      }
      if (TokenManager::homeOfColor("silver", shape.n) == shape.victim) {
        mine["silver"] = kSilver;
      }
      victimTok2->attach(refs, shape.victim, mine);
      for (std::size_t i = 0; i < shape.n; ++i) {
        if (i != shape.victim) {
          managers[i]->rewire(shape.victim, victimTok2->ref());
        }
      }
      restarted = true;
    }
    for (std::size_t i = 0; i < shape.n; ++i) {
      for (std::size_t j = 0; j < shape.n; ++j) {
        if (i == j || dead.count(i) != 0 || dead.count(j) != 0) continue;
        DataMessage m(kMeshKind);
        m.set("src", Value(static_cast<long long>(i)));
        m.set("seq", Value(static_cast<long long>(round)));
        m.set("pay", Value(static_cast<long long>(
                         seed ^ (i << 16) ^ (j << 8) ^ round)));
        try {
          meshOut.at({i, j})->send(m);
        } catch (const Error&) {
          // Stream died (partition outlasting the delivery timeout, or the
          // victim's endpoint); the channel is no longer held to the oracle.
          dead.insert(i == shape.victim ? i : j);
        }
      }
    }
    clock.sleepFor(milliseconds(5 + rng.below(20)));
  }
  if (shape.module == 2 && !crashed) {
    clock.sleepFor(shape.crashAt);
    dapplets[shape.victim]->crash();
    dead.insert(shape.victim);
    crashed = true;
  }

  mark("module-workload");
  // ---- module workloads --------------------------------------------------
  if (shape.module == 0) {
    for (int op = 0; op < 8; ++op) {
      auto& mgr = *managers[rng.below(shape.n)];
      const char* color = rng.below(2) == 0 ? "gold" : "silver";
      const std::int64_t want = 1 + static_cast<std::int64_t>(rng.below(2));
      try {
        mgr.request({{color, want}}, seconds(30));
        mgr.release({{color, want}});
      } catch (const Error& e) {
        oracles.fail("tokens: op ", op, " failed: ", e.what());
        break;
      }
    }
    try {
      const TokenBag totals = managers[0]->totalTokens(seconds(30));
      const std::int64_t gold =
          totals.count("gold") != 0 ? totals.at("gold") : 0;
      const std::int64_t silver =
          totals.count("silver") != 0 ? totals.at("silver") : 0;
      if (gold != kGold || silver != kSilver) {
        oracles.fail("tokens: conservation broken: gold=", gold, "/", kGold,
                     " silver=", silver, "/", kSilver);
      }
      digest.addf("tokens gold=", gold, " silver=", silver);
    } catch (const Error& e) {
      oracles.fail("tokens: totalTokens failed: ", e.what());
    }
  } else if (shape.module == 1 && !sessionId.empty()) {
    try {
      auto results = initiator->awaitCompletion(sessionId, seconds(120));
      std::int64_t agreedWinner = -2;
      std::size_t winners = 0;
      bool agree = true;
      for (std::size_t i = 0; i < shape.n; ++i) {
        const Value& r = results.at("fz" + std::to_string(i));
        const std::int64_t w = r.at("winner").asInt();
        if (r.at("won").asBool()) ++winners;
        if (agreedWinner == -2) {
          agreedWinner = w;
        } else if (w != agreedWinner) {
          agree = false;
        }
      }
      if (!agree) oracles.fail("cardgame: players disagree on the winner");
      if (winners > 1) {
        oracles.fail("cardgame: ", winners, " players claim the win");
      }
      // The winner's identity is consensus *output*: every run agrees
      // internally, but timing under loss may crown a different player.
      // The digest records the invariant (one winner, unanimous), not the
      // schedule-dependent identity.
      (void)agreedWinner;
      digest.addf("cardgame agree=", agree ? 1 : 0, " winners=", winners);
    } catch (const Error& e) {
      oracles.fail("cardgame: completion failed: ", e.what());
    }
    initiator->terminate(sessionId);
  } else if (shape.module == 2 && !sessionId.empty()) {
    try {
      auto results = initiator->awaitCompletion(sessionId, seconds(30));
      const std::string victimName = "fz" + std::to_string(shape.victim);
      const auto down = initiator->downMembers(sessionId);
      if (down.count(victimName) == 0) {
        oracles.fail("eviction: crashed member '", victimName,
                     "' never evicted");
      }
      if (results.size() != shape.n) {
        oracles.fail("eviction: ", results.size(), "/", shape.n,
                     " members settled");
      }
      for (std::size_t i = 0; i < shape.n; ++i) {
        if (i == shape.victim) continue;
        const Value& r = results.at("fz" + std::to_string(i));
        if (!r.at("sawPeerDown").asBool()) {
          oracles.fail("eviction: survivor fz", i,
                       " fell through to the receive timeout");
        }
      }
      digest.addf("eviction down=", down.size(), " settled=", results.size());
    } catch (const Error& e) {
      oracles.fail("eviction: completion failed: ", e.what());
    }
    initiator->terminate(sessionId);
  } else if (shape.module == 3 && !sessionId.empty()) {
    // Deterministic-outcome digest: must be identical between this run and
    // the suppressKillRestart control run of the same seed.  Only outcome
    // values are folded — never schedule artifacts (rejoin and eviction
    // counts depend on where the crash lands relative to role completion).
    Digest rec;
    try {
      auto results = initiator->awaitCompletion(sessionId, seconds(120));
      const std::int64_t want = kRecItems * (kRecItems + 1) / 2;
      const std::int64_t sum = results.at("victim").asInt();
      const std::int64_t fed = results.at("feeder").asInt();
      if (sum != want) {
        oracles.fail("recovery: victim summed ", sum, " != ", want);
      }
      if (fed != kRecItems) {
        oracles.fail("recovery: feeder delivered ", fed, "/", kRecItems);
      }
      if (results.size() != 2) {
        oracles.fail("recovery: ", results.size(), "/2 members settled");
      }
      rec.addf("results victim=", sum, " feeder=", fed,
               " settled=", results.size());
      // Token accounting across the restart: the journaled pool restored
      // the pre-crash grant, so two more exhaust it — and totals must show
      // the original mint, neither leaked nor doubled.
      if (restarted) feederTok->rewire(1, victimTok2->ref());
      feederTok->request({{recColor, 2}}, seconds(30));
      const TokenBag held = feederTok->holdsTokens();
      const std::int64_t holds =
          held.count(recColor) != 0 ? held.at(recColor) : 0;
      const TokenBag totals = feederTok->totalTokens(seconds(30));
      const std::int64_t total =
          totals.count(recColor) != 0 ? totals.at(recColor) : 0;
      if (holds != kRecTokens) {
        oracles.fail("recovery: grant lost across restart: holds ", holds,
                     "/", kRecTokens);
      }
      if (total != kRecTokens) {
        oracles.fail("recovery: token conservation broken: ", total, "/",
                     kRecTokens);
      }
      rec.addf("tokens holds=", holds, " total=", total);
    } catch (const Error& e) {
      oracles.fail("recovery: workload failed: ", e.what());
      rec.addf("failed");
    }
    recoveryDigestOut = rec.value();
    digest.addf("recovery rdigest=", rec.value());
    initiator->terminate(sessionId);
  } else if (shape.module == 4) {
    // Deterministic-outcome digest, compared against the suppressKillRestart
    // control run of the same seed: only invariant final state is folded
    // (balanced home ledgers, zero outstanding loans, the conserved mint) —
    // never stats or counters, which are crash-placement-dependent.
    Digest rec;
    const auto mgrAt = [&](std::size_t i) -> TokenManager& {
      return restarted && i == shape.victim ? *victimTok2 : *managers[i];
    };
    try {
      // The victim's journaled pre-crash grant must have survived the kill.
      const TokenBag vh = mgrAt(shape.victim).holdsTokens();
      if ((vh.count("gold") != 0 ? vh.at("gold") : 0) != 1) {
        oracles.fail("lease: victim's journaled grant lost across restart");
      }
      // Borrow/spend/release churn across every member; a request colliding
      // with credit cached elsewhere exercises the recall path.
      for (int op = 0; op < 10; ++op) {
        auto& mgr = mgrAt(rng.below(shape.n));
        const char* color = rng.below(2) == 0 ? "gold" : "silver";
        const std::int64_t want = 1 + static_cast<std::int64_t>(rng.below(2));
        mgr.request({{color, want}}, seconds(60));
        mgr.release({{color, want}});
      }
      // Wind down: release the pre-crash holdings, flush every cache, let
      // the returns land (virtual time; link delays are microseconds).
      mgrAt(shape.victim).release({{"gold", 1}});
      managers[0]->release({{"silver", 1}});
      for (std::size_t i = 0; i < shape.n; ++i) {
        mgrAt(i).returnCachedCredits();
      }
      clock.sleepFor(milliseconds(500));
      // Conservation, exactly: pool + cached credit + in-flight grants all
      // returned home, once each.
      bool audited = true;
      for (std::size_t i = 0; i < shape.n; ++i) {
        TokenManager& m = mgrAt(i);
        for (const std::string& v : m.auditHomeLedger()) {
          oracles.fail("lease: fz", i, " ledger: ", v);
          audited = false;
        }
        if (!m.lentCredits().empty()) {
          oracles.fail("lease: fz", i, " still lends after wind-down");
          audited = false;
        }
        if (!m.cachedCredits().empty()) {
          oracles.fail("lease: fz", i, " still caches after wind-down");
          audited = false;
        }
        if (!m.holdsTokens().empty()) {
          oracles.fail("lease: fz", i, " still holds after wind-down");
          audited = false;
        }
      }
      const TokenBag totals = mgrAt(0).totalTokens(seconds(30));
      const std::int64_t gold =
          totals.count("gold") != 0 ? totals.at("gold") : 0;
      const std::int64_t silver =
          totals.count("silver") != 0 ? totals.at("silver") : 0;
      if (gold != kGold || silver != kSilver) {
        oracles.fail("lease: conservation broken: gold=", gold, "/", kGold,
                     " silver=", silver, "/", kSilver);
      }
      rec.addf("lease gold=", gold, " silver=", silver,
               " audit=", audited ? "ok" : "broken");
    } catch (const Error& e) {
      oracles.fail("lease: workload failed: ", e.what());
      rec.addf("failed");
    }
    recoveryDigestOut = rec.value();
    digest.addf("lease rdigest=", rec.value());
  }

  mark("drain");
  // ---- drain the mesh and check FIFO + completeness ----------------------
  for (std::size_t j = 0; j < shape.n; ++j) {
    if (dead.count(j) != 0) continue;
    std::map<std::size_t, std::vector<std::int64_t>> perSender;
    std::map<std::size_t, std::uint64_t> paySum;
    for (;;) {
      std::optional<Delivery> del;
      try {
        del = meshIn[j]->receiveFor(seconds(15));
      } catch (const Error&) {
        break;  // inbox closed underneath us (crash racing the drain)
      }
      if (!del) break;
      const auto* m = dynamic_cast<const DataMessage*>(del->message.get());
      if (m == nullptr || m->kind() != kMeshKind) continue;
      const auto src = static_cast<std::size_t>(m->get("src").asInt());
      perSender[src].push_back(m->get("seq").asInt());
      paySum[src] += static_cast<std::uint64_t>(m->get("pay").asInt());
    }
    for (std::size_t i = 0; i < shape.n; ++i) {
      if (i == j) continue;
      const auto it = perSender.find(i);
      const std::size_t got = it == perSender.end() ? 0 : it->second.size();
      if (it != perSender.end()) {
        for (std::size_t k = 0; k < it->second.size(); ++k) {
          if (it->second[k] != static_cast<std::int64_t>(k)) {
            oracles.fail("fifo: channel fz", i, "->fz", j,
                         " out of order at position ", k, " (seq ",
                         it->second[k], ")");
            break;
          }
        }
      }
      if (dead.count(i) == 0 && got != shape.rounds) {
        oracles.fail("delivery: channel fz", i, "->fz", j, " delivered ",
                     got, "/", shape.rounds);
      }
      if (dead.count(i) == 0) {
        digest.addf("ch fz", i, "->fz", j, " got=", got,
                    " pay=", paySum[i]);
      } else {
        // A crashed sender's partial delivery count is schedule noise (how
        // many in-flight frames beat the crash): fold the fact, not the
        // number — the FIFO oracle above still vets whatever did arrive.
        digest.addf("ch fz", i, "->fz", j, " sender-crashed");
      }
    }
  }

  mark("ack-discipline");
  // ---- ack economy oracle ------------------------------------------------
  // Delayed/coalesced acks must never stall delivery (the drain above already
  // proved completeness within the delivery timeout); here we check the
  // bookkeeping side: every ack block emission is justified by at least one
  // frame arrival, so coalescing can only ever *reduce* ack traffic.
  for (std::size_t i = 0; i < shape.n; ++i) {
    if (dead.count(i) != 0) continue;
    const ReliableEndpoint::Stats rs = dapplets[i]->transport().stats();
    if (rs.acksSent > rs.delivered + rs.duplicates + rs.outOfOrderBuffered) {
      oracles.fail("acks: fz", i, " emitted ", rs.acksSent,
                   " ack blocks for only ", rs.delivered, "+", rs.duplicates,
                   "+", rs.outOfOrderBuffered, " frame arrivals");
    }
    if (rs.dupAcksSuppressed != rs.duplicates) {
      oracles.fail("acks: fz", i, " suppressed ", rs.dupAcksSuppressed,
                   " dup re-acks but saw ", rs.duplicates, " duplicates");
    }
  }

  mark("retransmit-efficiency");
  // ---- retransmit-efficiency oracle --------------------------------------
  // The adaptive sender (SRTT-estimated RTO, congestion window, fast
  // retransmit) must spend retransmitted bytes commensurate with what the
  // link actually lost.  A loss in either direction (the DATA frame or the
  // ack block covering it) costs about one resend, so lossy links earn a
  // proportional allowance; on top of that a fixed slack covers traffic
  // retransmitted into dark links (partitions, and module 2's crashed
  // member, whose streams back off to maxRto until the delivery timeout
  // fails them).  The 3x headroom keeps the verdict schedule-stable.  A
  // fixed-RTO sender mis-tuned below the path RTT blows through this bound
  // (bench_transport quantifies the same ratio against that baseline).
  static const bool dumpRetx = std::getenv("DAPPLE_FUZZ_TRACE") != nullptr;
  for (std::size_t i = 0; i < shape.n; ++i) {
    if (dead.count(i) != 0) continue;
    const ReliableEndpoint::Stats rs = dapplets[i]->transport().stats();
    if (rs.dataBytes == 0) continue;
    const double faultRate =
        std::min(0.9, 2 * shape.link.lossProb + shape.link.dupProb);
    const double darkSlack =
        24.0 * 1024 *
        (1 + static_cast<double>(shape.partitions.size()) +
         (shape.module >= 2 ? static_cast<double>(shape.n) : 0.0));
    const double allowance =
        3.0 * (faultRate / (1 - faultRate)) *
            static_cast<double>(rs.dataBytes) +
        darkSlack;
    if (dumpRetx) {
      std::fprintf(stderr, "retx| fz%zu data=%llu retx=%llu allowance=%.0f\n",
                   i, static_cast<unsigned long long>(rs.dataBytes),
                   static_cast<unsigned long long>(rs.retransmitBytes),
                   allowance);
    }
    if (static_cast<double>(rs.retransmitBytes) > allowance) {
      oracles.fail("retransmit-efficiency: fz", i, " resent ",
                   rs.retransmitBytes, " bytes against ", rs.dataBytes,
                   " first-transmission bytes (allowance ",
                   static_cast<std::uint64_t>(allowance), ")");
    }
  }

  mark("teardown");
  // ---- teardown, then the fabric-level conservation oracle ---------------
  // Modules 3 and 4 ordering: token managers and agents go before the
  // durable handles that back them; the restarted process lives outside the
  // mesh vector and is stopped explicitly (the mesh loop below skips it —
  // the original victim slot is in `dead`).
  feederTok.reset();
  victimTok.reset();
  victimTok2.reset();
  victimAgent2.reset();
  managers.clear();
  agents.clear();
  monitors.clear();
  recDurable.reset();
  recDurable2.reset();
  directorMonitor.reset();
  initiator.reset();
  if (director) director->stop();
  if (victim2) victim2->stop();
  for (std::size_t i = 0; i < shape.n; ++i) {
    if (dead.count(i) == 0) dapplets[i]->stop();
  }
  if (!recoveryDir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(recoveryDir, ec);
  }
  mark("await-quiescent");
  if (!net.awaitQuiescent(seconds(30))) {
    oracles.fail("sim: network never went quiescent");
  }
  const obs::MetricsSnapshot sim = net.metrics();
  const auto c = [&sim](const char* k) {
    const auto it = sim.counters.find(k);
    return it == sim.counters.end() ? std::uint64_t{0} : it->second;
  };
  const bool conserved = c("sim.delivered") + c("sim.undeliverable") ==
                         c("sim.sent") - c("sim.dropped") + c("sim.duplicated");
  if (!conserved) {
    oracles.fail("sim: flow conservation broken: delivered=",
                 c("sim.delivered"), " undeliverable=", c("sim.undeliverable"),
                 " sent=", c("sim.sent"), " dropped=", c("sim.dropped"),
                 " duplicated=", c("sim.duplicated"));
  }
  // The raw fabric counters (retransmit and heartbeat volume) are schedule
  // noise even in virtual time — worker wake order varies run to run — so
  // the digest folds in only the schedule-independent verdict; the exact
  // counters surface in the oracle failure text when it breaks.
  digest.addf("sim conservation=", conserved ? "ok" : "broken");

  mark("done");
  ScenarioResult out;
  for (const std::string& f : oracles.failures) digest.add(f);
  out.digest = digest.value();
  out.recoveryDigest = recoveryDigestOut;
  out.ok = oracles.failures.empty();
  if (!out.ok) {
    std::ostringstream os;
    for (std::size_t i = 0; i < oracles.failures.size(); ++i) {
      if (i != 0) os << "; ";
      os << oracles.failures[i];
    }
    out.failure = os.str();
  }
  {
    std::ostringstream os;
    os << "n=" << shape.n << " loss=" << shape.link.lossProb
       << " dup=" << shape.link.dupProb << " module="
       << moduleName(shape.module) << " rounds=" << shape.rounds
       << " partitions=" << shape.partitions.size()
       << " codec=" << wireCodecName(options.codec.value_or(shape.codec));
    out.summary = os.str();
  }
  return out;
}

}  // namespace dapple::testkit
