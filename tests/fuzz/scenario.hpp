#pragma once
/// \file scenario.hpp
/// \brief Property-based scenario fuzzer for the dapple stack.
///
/// One seed deterministically generates a whole distributed scenario —
/// topology size, link delay/jitter/loss/duplication, a fault schedule of
/// partitions (always healed) and crash-stops, and a module-specific
/// workload on top of a full-mesh FIFO exchange — then runs it under a
/// `testkit::VirtualClock` (zero wall-clock sleeps) and checks invariant
/// oracles:
///
///  * per-channel FIFO: every surviving channel delivers its messages in
///    send order, without gaps;
///  * sim flow conservation: `delivered + undeliverable ==
///    sent - dropped + duplicated` (see sim.hpp);
///  * token conservation across managers (module 0);
///  * single-winner agreement in the card game (module 1);
///  * session membership convergence after a member crash (module 2);
///  * crash-recovery equivalence (module 3): a session member is killed and
///    restarted from its durable state (WAL + journal + REJOIN), and every
///    deterministic outcome — role results, token totals — must equal a
///    control run of the same seed that never killed anyone (compare
///    `recoveryDigest` against a `suppressKillRestart` run);
///  * token-lease conservation (module 4): every member borrows credit
///    under leases (DESIGN.md §14) through a borrow/spend/release churn
///    with one member kill-restarted mid-run; at wind-down every home
///    ledger must balance (`free + Σheld + Σlent == total`), no credit may
///    remain cached or lent, and the totals must equal the mint — with the
///    same kill-vs-control `recoveryDigest` equivalence as module 3.
///
/// The run folds its observable outcome (per-channel content sequences,
/// oracle verdicts, module results) into an FNV-1a digest.  With
/// `SimNetwork`'s hashed link randomness, the same seed produces a
/// byte-identical digest on every run — the repro contract behind
/// `dapple_fuzz --seed N`.

#include <cstdint>
#include <optional>
#include <string>

#include "dapple/serial/wire.hpp"
#include "dapple/util/time.hpp"

namespace dapple::testkit {

struct ScenarioOptions {
  /// Self-test canary: configure the reliable layer so the retransmit path
  /// never fires (rto beyond the delivery timeout).  Any lossy seed must
  /// then fail an oracle — proving the fuzzer can actually see bugs.
  bool canaryDisableRetransmit = false;
  /// Control run for modules 3 and 4: skip the kill-restart event but run
  /// the identical workload.  `recoveryDigest` must match the un-suppressed
  /// run of the same seed — crash-recovery must be outcome-invisible.
  bool suppressKillRestart = false;
  /// Wire codec override.  By default the seed picks one (half the seeds
  /// run binary, half text); forcing it lets the smoke suite assert that
  /// digests and every oracle are codec-invariant — the encoding changes
  /// the bytes (and thus the content-hashed fault schedule) but must never
  /// change an outcome.
  std::optional<WireCodec> codec;
};

struct ScenarioResult {
  bool ok = true;
  /// One-line oracle verdicts, empty when ok.  The first line is the
  /// headline failure.
  std::string failure;
  /// FNV-1a digest of the canonical outcome; identical across runs of the
  /// same seed.
  std::uint64_t digest = 0;
  /// Modules 3 and 4 only: digest of the *deterministic* outcomes (role
  /// results, token totals, ledger audits — never schedule artifacts like
  /// rejoin counts).  Equal between a kill-restart run and its
  /// `suppressKillRestart` control.
  std::uint64_t recoveryDigest = 0;
  /// Human-oriented counts ("n=3 loss=0.10 module=tokens ..." ).
  std::string summary;
};

/// Runs the scenario for `seed` entirely in virtual time.
ScenarioResult runScenario(std::uint64_t seed,
                           const ScenarioOptions& options = {});

/// The one-line reproduction command printed on failure.
std::string reproLine(std::uint64_t seed);

}  // namespace dapple::testkit
