// dapple_fuzz: property-based scenario fuzzer CLI.
//
//   dapple_fuzz --seed N          replay one scenario (the repro mode)
//   dapple_fuzz --count M         run seeds [--start, --start + M)
//   dapple_fuzz --canary          run with the retransmit path disabled;
//                                 exits 0 only if some seed FAILS (fuzzer
//                                 self-test: it must be able to see bugs)
//
// On any oracle failure the tool prints a one-line repro command and the
// trace digest; the same seed always reproduces the same digest.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dapple/util/log.hpp"
#include "scenario.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--start N] [--count M] [--canary] "
               "[--no-kill] [--codec text|binary] [--log-debug] [--quiet]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using dapple::testkit::reproLine;
  using dapple::testkit::runScenario;
  using dapple::testkit::ScenarioOptions;

  std::uint64_t start = 0;
  std::uint64_t count = 1;
  bool haveSeed = false;
  bool quiet = false;
  ScenarioOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::uint64_t {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (arg == "--seed") {
      start = next();
      count = 1;
      haveSeed = true;
    } else if (arg == "--start") {
      start = next();
    } else if (arg == "--count") {
      count = next();
    } else if (arg == "--canary") {
      options.canaryDisableRetransmit = true;
    } else if (arg == "--no-kill") {
      // Module-3 control run: same workload, no kill-restart.  Its
      // recoveryDigest must match the default run of the same seed.
      options.suppressKillRestart = true;
    } else if (arg == "--codec") {
      // Force one codec across every seed (default: the seed picks).
      // Digests are codec-invariant, so `--seed N --codec text` and
      // `--seed N --codec binary` must print the same digest.
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      const std::string name = argv[++i];
      if (name == "text") {
        options.codec = dapple::WireCodec::kText;
      } else if (name == "binary") {
        options.codec = dapple::WireCodec::kBinary;
      } else {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--log-debug") {
      dapple::log::setLevel(dapple::log::Level::kDebug);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  (void)haveSeed;

  std::uint64_t failures = 0;
  for (std::uint64_t seed = start; seed < start + count; ++seed) {
    const auto result = runScenario(seed, options);
    if (!result.ok) {
      ++failures;
      std::printf("FAIL seed=%llu digest=%016llx %s\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(result.digest),
                  result.summary.c_str());
      std::printf("  %s\n", result.failure.c_str());
      std::printf("  repro: %s\n", reproLine(seed).c_str());
      if (options.canaryDisableRetransmit) break;  // one catch is proof
    } else if (!quiet) {
      if (result.recoveryDigest != 0) {
        std::printf("ok   seed=%llu digest=%016llx rdigest=%016llx %s\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(result.digest),
                    static_cast<unsigned long long>(result.recoveryDigest),
                    result.summary.c_str());
      } else {
        std::printf("ok   seed=%llu digest=%016llx %s\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(result.digest),
                    result.summary.c_str());
      }
    }
  }

  if (options.canaryDisableRetransmit) {
    if (failures == 0) {
      std::printf("canary NOT caught in %llu seed(s) — the fuzzer is "
                  "blind\n",
                  static_cast<unsigned long long>(count));
      return 1;
    }
    std::printf("canary caught (%llu failing seed(s))\n",
                static_cast<unsigned long long>(failures));
    return 0;
  }
  return failures == 0 ? 0 : 1;
}
