// Tests for the token service (§4.1): request/release semantics, the
// conservation invariant, reader/writer exclusion, and deadlock detection.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>

#include "dapple/net/sim.hpp"
#include "dapple/services/directory/directory_service.hpp"
#include "dapple/services/recovery/recovery.hpp"
#include "dapple/services/sync/distributed.hpp"
#include "dapple/services/tokens/token_manager.hpp"
#include "dapple/testkit/virtual_clock.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

TokenConfig fastProbes() {
  TokenConfig cfg;
  cfg.probeDelay = milliseconds(50);
  cfg.probeInterval = milliseconds(50);
  return cfg;
}

/// N dapplets, each with an attached token manager.  `seed[color]` tokens
/// are injected at each colour's home member.
struct TokenRig {
  explicit TokenRig(std::size_t n, const TokenBag& seed,
                    TokenConfig cfg = fastProbes())
      : net(55) {
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "t" + std::to_string(i)));
      managers.push_back(
          std::make_unique<TokenManager>(*dapplets.back(), cfg));
    }
    std::vector<InboxRef> refs;
    for (auto& m : managers) refs.push_back(m->ref());
    for (std::size_t i = 0; i < n; ++i) {
      TokenBag mine;
      for (const auto& [color, count] : seed) {
        if (TokenManager::homeOfColor(color, n) == i) mine[color] = count;
      }
      managers[i]->attach(refs, i, mine);
    }
  }

  ~TokenRig() {
    managers.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TokenManager>> managers;
};

TEST(Tokens, RequestGrantsAndHoldsTokens) {
  TokenRig rig(3, {{"red", 5}});
  rig.managers[0]->request({{"red", 2}});
  EXPECT_EQ(rig.managers[0]->holdsTokens().at("red"), 2);
  rig.managers[1]->request({{"red", 3}});
  EXPECT_EQ(rig.managers[1]->holdsTokens().at("red"), 3);
  rig.managers[0]->release({{"red", 2}});
  EXPECT_TRUE(rig.managers[0]->holdsTokens().empty());
}

TEST(Tokens, BlocksUntilTokensAreReleased) {
  TokenRig rig(2, {{"lock", 1}});
  rig.managers[0]->request({{"lock", 1}});
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    rig.managers[1]->request({{"lock", 1}}, seconds(10));
    granted = true;
  });
  std::this_thread::sleep_for(milliseconds(100));
  EXPECT_FALSE(granted) << "granted while the token was held elsewhere";
  rig.managers[0]->release({{"lock", 1}});
  waiter.join();
  EXPECT_TRUE(granted);
  EXPECT_EQ(rig.managers[1]->holdsTokens().at("lock"), 1);
}

TEST(Tokens, RequestAllTokensOfAColor) {
  TokenRig rig(3, {{"rw", 4}});
  rig.managers[2]->request({{"rw", TokenRequest::kAllTokens}});
  EXPECT_EQ(rig.managers[2]->holdsTokens().at("rw"), 4);
  rig.managers[2]->release({{"rw", TokenRequest::kAllTokens}});
  EXPECT_TRUE(rig.managers[2]->holdsTokens().empty());
  rig.managers[0]->request({{"rw", 4}});  // all free again
}

TEST(Tokens, ReleaseUnheldThrows) {
  // Paper: "if the tokens specified in tokenList are not in holdsTokens an
  // exception is raised".
  TokenRig rig(2, {{"red", 3}});
  EXPECT_THROW(rig.managers[0]->release({{"red", 1}}), TokenError);
  rig.managers[0]->request({{"red", 2}});
  EXPECT_THROW(rig.managers[0]->release({{"red", 3}}), TokenError);
  rig.managers[0]->release({{"red", 2}});  // exact holdings fine
}

TEST(Tokens, UnknownColorFailsRequest) {
  TokenRig rig(2, {{"known", 1}});
  EXPECT_THROW(rig.managers[0]->request({{"imaginary", 1}}), TokenError);
}

TEST(Tokens, OverTotalRequestFails) {
  TokenRig rig(2, {{"red", 3}});
  EXPECT_THROW(rig.managers[0]->request({{"red", 7}}), TokenError);
}

TEST(Tokens, TotalTokensReportsSystemTotals) {
  // Paper: "totalTokens() returns ... the total number of tokens of all
  // colors in the system" — unchanged no matter who holds what.
  TokenRig rig(3, {{"red", 5}, {"blue", 2}});
  auto before = rig.managers[1]->totalTokens();
  EXPECT_EQ(before.at("red"), 5);
  EXPECT_EQ(before.at("blue"), 2);
  rig.managers[0]->request({{"red", 4}, {"blue", 1}});
  auto after = rig.managers[2]->totalTokens();
  EXPECT_EQ(after, before) << "conservation invariant violated";
}

TEST(Tokens, ConservationUnderConcurrentChurn) {
  TokenRig rig(4, {{"a", 6}, {"b", 3}});
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back([&rig, i] {
      Rng rng(i + 1);
      for (int op = 0; op < 25; ++op) {
        const TokenColor color = rng.chance(0.5) ? "a" : "b";
        const std::int64_t n = 1 + static_cast<std::int64_t>(rng.below(2));
        rig.managers[i]->request({{color, n}}, seconds(20));
        std::this_thread::sleep_for(microseconds(rng.below(500)));
        rig.managers[i]->release({{color, n}});
      }
    });
  }
  for (auto& t : threads) t.join();
  auto totals = rig.managers[0]->totalTokens();
  EXPECT_EQ(totals.at("a"), 6);
  EXPECT_EQ(totals.at("b"), 3);
  // Everything was released: all requests must be grantable again.
  rig.managers[1]->request({{"a", 6}, {"b", 3}}, seconds(10));
}

TEST(Tokens, ReaderWriterProtocol) {
  // Paper §4.1: readers hold >= 1 token, writers hold all tokens.
  constexpr std::int64_t kReaders = 3;
  TokenRig rig(3, {{"doc", kReaders}});
  std::atomic<int> readers{0};
  std::atomic<int> writers{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(7 * i + 1);
      for (int op = 0; op < 20; ++op) {
        if (rng.chance(0.3)) {
          rig.managers[i]->request({{"doc", TokenRequest::kAllTokens}},
                                   seconds(20));
          if (++writers != 1 || readers != 0) violated = true;
          std::this_thread::sleep_for(microseconds(200));
          --writers;
          rig.managers[i]->release({{"doc", TokenRequest::kAllTokens}});
        } else {
          rig.managers[i]->request({{"doc", 1}}, seconds(20));
          ++readers;
          if (writers != 0) violated = true;
          std::this_thread::sleep_for(microseconds(100));
          --readers;
          rig.managers[i]->release({{"doc", 1}});
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated) << "read/write exclusion violated";
}

TEST(Tokens, DeadlockDetectedOnTwoCycle) {
  // Paper: "If the token managers detect a deadlock an exception is
  // raised" — the hold-and-wait two-cycle: 0 holds A wants B, 1 holds B
  // wants A.  A deadlock victim releases its held colour, so one abort
  // unwinds the whole cycle and the survivor's request completes.
  TokenRig rig(2, {{"A", 1}, {"B", 1}});
  rig.managers[0]->request({{"A", 1}});
  rig.managers[1]->request({{"B", 1}});
  std::atomic<int> deadlocks{0};
  const auto chase = [&](std::size_t self, const char* held, const char* want) {
    try {
      rig.managers[self]->request({{want, 1}}, seconds(30));
      rig.managers[self]->release({{want, 1}});
      rig.managers[self]->release({{held, 1}});
    } catch (const DeadlockError&) {
      ++deadlocks;
      rig.managers[self]->release({{held, 1}});
    } catch (const Error& e) {
      ADD_FAILURE() << "member " << self << " raised " << e.what();
    }
  };
  std::thread t0(chase, 0, "A", "B");
  std::thread t1(chase, 1, "B", "A");
  t0.join();
  t1.join();
  EXPECT_GE(deadlocks.load(), 1) << "no deadlock detected";
  // Every colour is back at its home: the system recovers.
  rig.managers[0]->request({{"A", 1}, {"B", 1}}, seconds(30));
  rig.managers[0]->release({{"A", 1}, {"B", 1}});
}

TEST(Tokens, DeadlockDetectedOnThreeCycle) {
  TokenRig rig(3, {{"A", 1}, {"B", 1}, {"C", 1}});
  rig.managers[0]->request({{"A", 1}});
  rig.managers[1]->request({{"B", 1}});
  rig.managers[2]->request({{"C", 1}});
  std::atomic<int> deadlocks{0};
  const auto chase = [&](std::size_t self, const char* held, const char* want) {
    try {
      rig.managers[self]->request({{want, 1}}, seconds(30));
      rig.managers[self]->release({{want, 1}});
      rig.managers[self]->release({{held, 1}});
    } catch (const DeadlockError&) {
      // Aborting releases nothing by itself — drop the held colour too so
      // the ring unwinds and the remaining chasers finish cleanly.
      ++deadlocks;
      rig.managers[self]->release({{held, 1}});
    } catch (const Error& e) {
      ADD_FAILURE() << "member " << self << " raised " << e.what();
    }
  };
  std::thread t0(chase, 0, "A", "B");
  std::thread t1(chase, 1, "B", "C");
  std::thread t2(chase, 2, "C", "A");
  t0.join();
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
}

TEST(Tokens, NoFalseDeadlockUnderContention) {
  // Heavy contention on one colour with release-before-request discipline
  // must never report deadlock (paper: avoided "if dapplets release all
  // resources before next requesting resources").
  TokenRig rig(3, {{"hot", 1}});
  std::atomic<int> deadlocks{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      for (int op = 0; op < 15; ++op) {
        try {
          rig.managers[i]->request({{"hot", 1}}, seconds(30));
          std::this_thread::sleep_for(milliseconds(20));  // probes fire
          rig.managers[i]->release({{"hot", 1}});
        } catch (const DeadlockError&) {
          ++deadlocks;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(deadlocks.load(), 0) << "false positive deadlock";
}

TEST(Tokens, TimestampFairnessEarlierRequestWinsTheQueue) {
  TokenRig rig(3, {{"fair", 1}});
  rig.managers[0]->request({{"fair", 1}});
  // Queue two waiters in timestamp order: manager 1 requests first.
  std::atomic<int> order{0};
  std::atomic<int> firstServed{-1};
  std::thread w1([&] {
    rig.managers[1]->request({{"fair", 1}}, seconds(10));
    int expected = -1;
    firstServed.compare_exchange_strong(expected, 1);
    rig.managers[1]->release({{"fair", 1}});
  });
  std::this_thread::sleep_for(milliseconds(100));  // ensure ts(1) < ts(2)
  std::thread w2([&] {
    rig.managers[2]->request({{"fair", 1}}, seconds(10));
    int expected = -1;
    firstServed.compare_exchange_strong(expected, 2);
    rig.managers[2]->release({{"fair", 1}});
  });
  std::this_thread::sleep_for(milliseconds(100));
  rig.managers[0]->release({{"fair", 1}});
  w1.join();
  w2.join();
  EXPECT_EQ(firstServed.load(), 1)
      << "later-timestamped request served first";
  (void)order;
}

TEST(Tokens, MultiColorRequestIsAtomicOnFailure) {
  TokenRig rig(2, {{"x", 2}, {"y", 2}});
  // A request with an unknown colour must not leave x tokens held.
  EXPECT_THROW(rig.managers[0]->request({{"x", 1}, {"ghost", 1}}),
               TokenError);
  std::this_thread::sleep_for(milliseconds(100));  // returns drain
  auto totals = rig.managers[1]->totalTokens();
  EXPECT_EQ(totals.at("x"), 2);
  rig.managers[1]->request({{"x", 2}}, seconds(5));  // all free
}

TEST(DistributedSemaphore, MutualExclusionAcrossDapplets) {
  TokenRig rig(3, {{"sem", 1}});
  DistributedSemaphore sem0(*rig.managers[0], "sem");
  DistributedSemaphore sem1(*rig.managers[1], "sem");
  DistributedSemaphore sem2(*rig.managers[2], "sem");
  DistributedSemaphore* sems[] = {&sem0, &sem1, &sem2};
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      for (int op = 0; op < 10; ++op) {
        sems[i]->acquire(1, seconds(20));
        if (++inside != 1) violated = true;
        std::this_thread::sleep_for(microseconds(300));
        --inside;
        sems[i]->release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated);
}

TEST(Tokens, StatsAreMaintained) {
  TokenRig rig(2, {{"s", 2}});
  rig.managers[0]->request({{"s", 1}});
  rig.managers[0]->release({{"s", 1}});
  const auto stats0 = rig.managers[0]->stats();
  EXPECT_EQ(stats0.requestsGranted, 1u);
  // The home of "s" (whichever member) issued a grant and served a release.
  const auto home = TokenManager::homeOfColor("s", 2);
  const auto homeStats = rig.managers[home]->stats();
  EXPECT_GE(homeStats.grantsIssued, 1u);
  EXPECT_GE(homeStats.releasesServed, 1u);
}

// ---------------------------------------------------------------------------
// Credit caching under leases (DESIGN.md §14), on the virtual clock so lease
// lifetimes cost milliseconds of wall time and expiry races are repeatable.
// ---------------------------------------------------------------------------

SimNetwork::Options simOpts(testkit::VirtualClock& clock) {
  SimNetwork::Options opts;
  opts.clock = &clock;
  return opts;
}

/// Lease knobs: short leases, quiet deadlock prober (a borrower that holds
/// tokens while waiting would otherwise trip edge-chasing probes).
TokenConfig leaseCfg() {
  TokenConfig cfg;
  cfg.probeDelay = seconds(60);
  cfg.probeInterval = seconds(60);
  cfg.creditBatch = 3;
  cfg.leaseDuration = milliseconds(400);
  return cfg;
}

/// First colour (by enumeration) whose home is member `home` of `n`.
TokenColor colorHomedAt(std::size_t home, std::size_t n) {
  for (int i = 0;; ++i) {
    TokenColor c = "col" + std::to_string(i);
    if (TokenManager::homeOfColor(c, n) == home) return c;
  }
}

std::string leaseTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const auto path = std::filesystem::temp_directory_path() /
                    ("dapple_tokens_" + tag + "_" +
                     std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path.string();
}

/// N managers on the virtual clock.  Declaration order makes the clock
/// outlive the network and dapplets.
struct LeaseRig {
  LeaseRig(std::size_t n, const TokenBag& seed, TokenConfig cfg = leaseCfg())
      : net(91, simOpts(clock)) {
    for (std::size_t i = 0; i < n; ++i) {
      DappletConfig dc;
      dc.clock = &clock;
      dc.host = static_cast<std::uint32_t>(i + 1);
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "L" + std::to_string(i), dc));
      managers.push_back(
          std::make_unique<TokenManager>(*dapplets.back(), cfg));
    }
    for (auto& m : managers) refs.push_back(m->ref());
    for (std::size_t i = 0; i < n; ++i) {
      TokenBag mine;
      for (const auto& [color, count] : seed) {
        if (TokenManager::homeOfColor(color, n) == i) mine[color] = count;
      }
      managers[i]->attach(refs, i, mine);
    }
  }

  ~LeaseRig() {
    managers.clear();
    for (auto& d : dapplets) {
      if (d) d->stop();
    }
  }

  /// Abrupt death: the member's manager vanishes without returning its
  /// loan — only lease expiry (or memberDown) can recover the credits.
  void crashMember(std::size_t i) {
    dapplets[i]->crash();
    managers[i].reset();
    dapplets[i].reset();
  }

  testkit::VirtualClock clock;
  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TokenManager>> managers;
  std::vector<InboxRef> refs;
};

TEST(TokenLeases, CachedCreditServesLocalGrants) {
  const TokenColor color = colorHomedAt(0, 2);
  LeaseRig rig(2, {{color, 6}});
  auto& borrower = *rig.managers[1];

  borrower.request({{color, 1}});  // remote: grant + a borrowed batch
  EXPECT_EQ(borrower.stats().cacheMisses, 1u);
  EXPECT_EQ(borrower.cachedCredits().at(color), 3);

  borrower.request({{color, 2}});  // sub-let from the cache, no round trip
  EXPECT_EQ(borrower.stats().cacheHits, 1u);
  EXPECT_EQ(borrower.holdsTokens().at(color), 3);
  EXPECT_EQ(borrower.cachedCredits().at(color), 1);

  borrower.release({{color, 3}});  // leased grants return to the cache
  EXPECT_TRUE(borrower.holdsTokens().empty());
  EXPECT_EQ(borrower.cachedCredits().at(color), 4);

  // Home accounting: the whole loan (grant + batch) is on the books, and
  // the colour's system total is untouched by any of it.
  EXPECT_EQ(rig.managers[0]->lentCredits().at(color), 4);
  EXPECT_EQ(rig.managers[0]->totalTokens().at(color), 6);
}

TEST(TokenLeases, RenewalExtendsLeaseWithoutAGrantGap) {
  const TokenConfig cfg = leaseCfg();
  const TokenColor color = colorHomedAt(0, 2);
  LeaseRig rig(2, {{color, 6}}, cfg);
  auto& borrower = *rig.managers[1];

  borrower.request({{color, 2}});
  const auto lentBefore = rig.managers[0]->lentCredits().at(color);

  // Many lease lifetimes pass; the maintenance wheel renews in time, so
  // the home never reclaims and the cached credit never lapses.
  rig.clock.sleepFor(cfg.leaseDuration * 6);

  const auto home = rig.managers[0]->stats();
  EXPECT_EQ(home.leaseExpiries, 0u) << "renewal arrived late";
  EXPECT_EQ(home.leasesReclaimed, 0u);
  EXPECT_EQ(rig.managers[0]->lentCredits().at(color), lentBefore);
  EXPECT_GE(borrower.stats().leaseRenewals, 2u);

  borrower.request({{color, 1}});  // still served locally: no grant gap
  EXPECT_EQ(borrower.stats().cacheHits, 1u);
}

TEST(TokenLeases, ExpiryReclaimsACrashedBorrowersCredit) {
  const TokenConfig cfg = leaseCfg();
  const TokenColor color = colorHomedAt(0, 2);
  LeaseRig rig(2, {{color, 4}}, cfg);

  rig.managers[1]->request({{color, 2}});
  EXPECT_EQ(rig.managers[0]->lentCredits().at(color), 4);  // 2 held + batch

  rig.crashMember(1);
  rig.clock.sleepFor(cfg.leaseDuration * 4);  // renewals stopped with it

  const auto home = rig.managers[0]->stats();
  EXPECT_GE(home.leaseExpiries, 1u);
  EXPECT_GE(home.leasesReclaimed, 1u);
  EXPECT_TRUE(rig.managers[0]->lentCredits().empty());

  // Every token is back in the pool: the full colour is grantable again.
  rig.managers[0]->request({{color, 4}}, seconds(10));
  EXPECT_EQ(rig.managers[0]->holdsTokens().at(color), 4);
}

TEST(TokenLeases, ExpiryAndMemberDownReclaimExactlyOnce) {
  const TokenConfig cfg = leaseCfg();
  const TokenColor color = colorHomedAt(0, 3);
  LeaseRig rig(3, {{color, 9}}, cfg);

  rig.managers[1]->request({{color, 2}});  // loan of 5 (2 held + batch 3)
  rig.managers[2]->request({{color, 1}});  // loan of 4

  // Order one: failure detector first, expiry sweep later.
  rig.crashMember(1);
  rig.managers[0]->memberDown(1);
  EXPECT_EQ(rig.managers[0]->stats().leasesReclaimed, 1u);
  rig.clock.sleepFor(cfg.leaseDuration * 4);
  // The sweep found no record left for member 1, and member 2 kept
  // renewing: still exactly one reclaim.
  EXPECT_EQ(rig.managers[0]->stats().leasesReclaimed, 1u);

  // Order two: expiry first, a (late) MEMBER_DOWN verdict after.
  rig.crashMember(2);
  rig.clock.sleepFor(cfg.leaseDuration * 4);
  EXPECT_EQ(rig.managers[0]->stats().leasesReclaimed, 2u);
  EXPECT_GE(rig.managers[0]->stats().leaseExpiries, 1u);
  rig.managers[0]->memberDown(2);
  EXPECT_EQ(rig.managers[0]->stats().leasesReclaimed, 2u)
      << "MEMBER_DOWN after expiry double-freed the loan";

  // Exactly-once accounting: the pool holds exactly the seeded 9 — all
  // nine grantable, a tenth is not.
  EXPECT_TRUE(rig.managers[0]->lentCredits().empty());
  rig.managers[0]->request({{color, 9}}, seconds(10));
  EXPECT_THROW(rig.managers[0]->request({{color, 1}}, milliseconds(500)),
               TimeoutError);
}

TEST(TokenLeases, RestartReLeasesJournaledHoldingsUnderIncarnationGuard) {
  const std::uint64_t seed = 923;
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOpts(clock));
  const std::string dir = leaseTempDir("relet");
  const TokenColor color = colorHomedAt(0, 2);  // homed at the survivor

  DappletConfig ac;
  ac.clock = &clock;
  ac.host = 1;
  Dapplet a(net, "a", ac);
  TokenManager ma(a, leaseCfg());

  DappletConfig bc;
  bc.clock = &clock;
  bc.host = 2;
  auto b = std::make_unique<Dapplet>(net, "b", bc);
  auto bds = std::make_unique<recovery::DurableState>(*b, dir);
  TokenConfig bCfg = leaseCfg();
  bCfg.journal = &bds->store();
  bCfg.incarnation = bds->incarnation();
  auto mb = std::make_unique<TokenManager>(*b, bCfg);

  ma.attach({ma.ref(), mb->ref()}, 0, {{color, 6}});
  mb->attach({ma.ref(), mb->ref()}, 1, {});

  mb->request({{color, 2}});  // loan of 5: 2 held + batch 3 cached
  EXPECT_EQ(ma.lentCredits().at(color), 5);

  b->crash();
  mb.reset();
  bds.reset();
  b.reset();

  DappletConfig b2c;
  b2c.clock = &clock;
  b2c.host = 3;
  auto b2 = std::make_unique<Dapplet>(net, "b", b2c);
  auto bds2 = std::make_unique<recovery::DurableState>(*b2, dir);
  EXPECT_TRUE(bds2->info().recovered);
  EXPECT_EQ(bds2->incarnation(), 2u);
  TokenConfig b2Cfg = leaseCfg();
  b2Cfg.journal = &bds2->store();
  b2Cfg.incarnation = bds2->incarnation();
  auto mb2 = std::make_unique<TokenManager>(*b2, b2Cfg);
  mb2->attach({ma.ref(), mb2->ref()}, 1, {});
  // The journaled holdings survive the reboot immediately (provisionally,
  // pending the re-lease).
  EXPECT_EQ(mb2->holdsTokens().at(color), 2);
  ma.rewire(1, mb2->ref());

  clock.sleepFor(milliseconds(300));  // the re-lease round trip completes

  // The home retired the first incarnation's loan before covering the
  // claim: one loan on the books, not two — a recovered borrower cannot
  // double-spend.
  EXPECT_EQ(ma.lentCredits().at(color), 5);
  EXPECT_EQ(mb2->holdsTokens().at(color), 2);
  EXPECT_EQ(mb2->cachedCredits().at(color), 3);
  EXPECT_EQ(ma.totalTokens().at(color), 6);

  // Wind the loan down: everything must land back in the home pool.
  mb2->release({{color, 2}});
  mb2->returnCachedCredits();
  clock.sleepFor(milliseconds(300));
  EXPECT_TRUE(ma.lentCredits().empty());
  ma.request({{color, 6}}, seconds(10));
  EXPECT_THROW(ma.request({{color, 1}}, milliseconds(500)), TimeoutError);

  mb2.reset();
  bds2.reset();
  b2->stop();
  a.stop();
}

TEST(TokenLeases, ConfigNormalizedClampsNonsense) {
  TokenConfig cfg;
  cfg.probeDelay = milliseconds(0);
  cfg.probeInterval = milliseconds(-5);
  cfg.creditBatch = -3;
  cfg.leaseDuration = milliseconds(0);
  cfg.maintenanceInterval = milliseconds(-1);
  cfg.incarnation = 0;
  std::vector<std::string> notes;
  const TokenConfig n = cfg.normalized(&notes);
  EXPECT_GT(n.probeDelay, Duration::zero());
  EXPECT_GT(n.probeInterval, Duration::zero());
  EXPECT_EQ(n.creditBatch, 0);  // nonsense batch falls back to no caching
  EXPECT_GT(n.leaseDuration, Duration::zero());
  EXPECT_GT(n.maintenanceInterval, Duration::zero());
  EXPECT_EQ(n.incarnation, 1u);
  EXPECT_FALSE(notes.empty());

  // A sane config normalizes silently (the derived maintenance interval is
  // not a clamp).
  std::vector<std::string> clean;
  leaseCfg().normalized(&clean);
  EXPECT_TRUE(clean.empty());
}

TEST(TokenLeases, WedgedLeaseKnobsStillGrantAfterClamping) {
  // Zero lease duration + caching on used to arm a zero-period renewal
  // wheel; the clamp must leave a functioning (if short-leased) manager.
  TokenConfig cfg = leaseCfg();
  cfg.leaseDuration = Duration::zero();
  cfg.maintenanceInterval = milliseconds(-7);
  const TokenColor color = colorHomedAt(0, 2);
  LeaseRig rig(2, {{color, 3}}, cfg);
  rig.managers[1]->request({{color, 1}});
  EXPECT_EQ(rig.managers[1]->holdsTokens().at(color), 1);
  rig.managers[1]->release({{color, 1}});
  EXPECT_EQ(rig.managers[0]->totalTokens().at(color), 3);
}

// ---------------------------------------------------------------------------
// Sharded directory with lease-cached lookups (DESIGN.md §14.4)
// ---------------------------------------------------------------------------

TEST(TokenLeases, ShardedDirectoryRoutesLooksUpAndExpiresCacheByLease) {
  testkit::VirtualClock clock;
  SimNetwork net(73, simOpts(clock));
  DappletConfig sc;
  sc.clock = &clock;
  sc.host = 1;
  Dapplet serverD(net, "registry", sc);
  DappletConfig cc;
  cc.clock = &clock;
  cc.host = 2;
  Dapplet clientD(net, "reader", cc);

  DirectoryConfig dirCfg;
  dirCfg.shards = 4;
  DirectoryServer server(serverD, dirCfg);
  EXPECT_EQ(server.shardCount(), 4u);
  // Key-range routing: first byte scaled over the shard count.
  EXPECT_EQ(DirectoryServer::shardOf("0numeric", 4), 0u);
  EXPECT_EQ(DirectoryServer::shardOf("alpha", 4), 1u);
  EXPECT_EQ(DirectoryServer::shardOf("\xE0high", 4), 3u);

  DirectoryClient registrar(serverD, server.refs(), dirCfg);
  DirectoryClient reader(clientD, server.refs(), dirCfg);
  const auto hits = [&] {
    return clientD.metricsRegistry().counter("directory.cache_hits").value();
  };
  const auto misses = [&] {
    return clientD.metricsRegistry()
        .counter("directory.cache_misses")
        .value();
  };

  // TTLs are minutes, not milliseconds: the test driver is a clock *guest*,
  // so virtual time may gallop through idle 5ms transport ticks while the
  // driver is between calls.  Minutes-scale leases make that drift
  // harmless; expiry is still exercised via an explicit sleepFor below.
  const InboxRef refA{NodeAddress{42, 1}, 0, "a"};
  const InboxRef refB{NodeAddress{42, 2}, 0, "b"};
  const InboxRef refN{NodeAddress{42, 3}, 0, "n"};
  registrar.registerName("alpha", refA, seconds(120));
  registrar.registerName("0numeric", refN, seconds(3600));

  // Miss, then hit: the second lookup is served from the lease cache.
  EXPECT_EQ(reader.lookup("alpha"), refA);
  EXPECT_EQ(misses(), 1u);
  EXPECT_EQ(reader.lookup("alpha"), refA);
  EXPECT_EQ(hits(), 1u);
  EXPECT_EQ(reader.lookup("0numeric"), refN);  // a different shard serves it
  EXPECT_EQ(misses(), 2u);

  // The full namespace spans shards; a nonempty prefix is one shard's.
  EXPECT_EQ(reader.list("").size(), 2u);
  EXPECT_EQ(reader.list("al").size(), 1u);

  // Replace the registration: the reader's cache is NOT broadcast-
  // invalidated — it keeps the old ref until the lease runs out...
  registrar.registerName("alpha", refB, seconds(3600));
  EXPECT_EQ(reader.lookup("alpha"), refA);
  EXPECT_EQ(hits(), 2u);

  // ...and expiry is the invalidation: past the lease, the next lookup
  // goes remote and sees the new ref.
  clock.sleepFor(seconds(121));
  EXPECT_EQ(reader.lookup("alpha"), refB);
  EXPECT_EQ(misses(), 3u);

  serverD.stop();
  clientD.stop();
}

}  // namespace
}  // namespace dapple
