// Tests for the token service (§4.1): request/release semantics, the
// conservation invariant, reader/writer exclusion, and deadlock detection.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "dapple/net/sim.hpp"
#include "dapple/services/sync/distributed.hpp"
#include "dapple/services/tokens/token_manager.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

TokenConfig fastProbes() {
  TokenConfig cfg;
  cfg.probeDelay = milliseconds(50);
  cfg.probeInterval = milliseconds(50);
  return cfg;
}

/// N dapplets, each with an attached token manager.  `seed[color]` tokens
/// are injected at each colour's home member.
struct TokenRig {
  explicit TokenRig(std::size_t n, const TokenBag& seed,
                    TokenConfig cfg = fastProbes())
      : net(55) {
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "t" + std::to_string(i)));
      managers.push_back(
          std::make_unique<TokenManager>(*dapplets.back(), cfg));
    }
    std::vector<InboxRef> refs;
    for (auto& m : managers) refs.push_back(m->ref());
    for (std::size_t i = 0; i < n; ++i) {
      TokenBag mine;
      for (const auto& [color, count] : seed) {
        if (TokenManager::homeOfColor(color, n) == i) mine[color] = count;
      }
      managers[i]->attach(refs, i, mine);
    }
  }

  ~TokenRig() {
    managers.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TokenManager>> managers;
};

TEST(Tokens, RequestGrantsAndHoldsTokens) {
  TokenRig rig(3, {{"red", 5}});
  rig.managers[0]->request({{"red", 2}});
  EXPECT_EQ(rig.managers[0]->holdsTokens().at("red"), 2);
  rig.managers[1]->request({{"red", 3}});
  EXPECT_EQ(rig.managers[1]->holdsTokens().at("red"), 3);
  rig.managers[0]->release({{"red", 2}});
  EXPECT_TRUE(rig.managers[0]->holdsTokens().empty());
}

TEST(Tokens, BlocksUntilTokensAreReleased) {
  TokenRig rig(2, {{"lock", 1}});
  rig.managers[0]->request({{"lock", 1}});
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    rig.managers[1]->request({{"lock", 1}}, seconds(10));
    granted = true;
  });
  std::this_thread::sleep_for(milliseconds(100));
  EXPECT_FALSE(granted) << "granted while the token was held elsewhere";
  rig.managers[0]->release({{"lock", 1}});
  waiter.join();
  EXPECT_TRUE(granted);
  EXPECT_EQ(rig.managers[1]->holdsTokens().at("lock"), 1);
}

TEST(Tokens, RequestAllTokensOfAColor) {
  TokenRig rig(3, {{"rw", 4}});
  rig.managers[2]->request({{"rw", TokenRequest::kAllTokens}});
  EXPECT_EQ(rig.managers[2]->holdsTokens().at("rw"), 4);
  rig.managers[2]->release({{"rw", TokenRequest::kAllTokens}});
  EXPECT_TRUE(rig.managers[2]->holdsTokens().empty());
  rig.managers[0]->request({{"rw", 4}});  // all free again
}

TEST(Tokens, ReleaseUnheldThrows) {
  // Paper: "if the tokens specified in tokenList are not in holdsTokens an
  // exception is raised".
  TokenRig rig(2, {{"red", 3}});
  EXPECT_THROW(rig.managers[0]->release({{"red", 1}}), TokenError);
  rig.managers[0]->request({{"red", 2}});
  EXPECT_THROW(rig.managers[0]->release({{"red", 3}}), TokenError);
  rig.managers[0]->release({{"red", 2}});  // exact holdings fine
}

TEST(Tokens, UnknownColorFailsRequest) {
  TokenRig rig(2, {{"known", 1}});
  EXPECT_THROW(rig.managers[0]->request({{"imaginary", 1}}), TokenError);
}

TEST(Tokens, OverTotalRequestFails) {
  TokenRig rig(2, {{"red", 3}});
  EXPECT_THROW(rig.managers[0]->request({{"red", 7}}), TokenError);
}

TEST(Tokens, TotalTokensReportsSystemTotals) {
  // Paper: "totalTokens() returns ... the total number of tokens of all
  // colors in the system" — unchanged no matter who holds what.
  TokenRig rig(3, {{"red", 5}, {"blue", 2}});
  auto before = rig.managers[1]->totalTokens();
  EXPECT_EQ(before.at("red"), 5);
  EXPECT_EQ(before.at("blue"), 2);
  rig.managers[0]->request({{"red", 4}, {"blue", 1}});
  auto after = rig.managers[2]->totalTokens();
  EXPECT_EQ(after, before) << "conservation invariant violated";
}

TEST(Tokens, ConservationUnderConcurrentChurn) {
  TokenRig rig(4, {{"a", 6}, {"b", 3}});
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back([&rig, i] {
      Rng rng(i + 1);
      for (int op = 0; op < 25; ++op) {
        const TokenColor color = rng.chance(0.5) ? "a" : "b";
        const std::int64_t n = 1 + static_cast<std::int64_t>(rng.below(2));
        rig.managers[i]->request({{color, n}}, seconds(20));
        std::this_thread::sleep_for(microseconds(rng.below(500)));
        rig.managers[i]->release({{color, n}});
      }
    });
  }
  for (auto& t : threads) t.join();
  auto totals = rig.managers[0]->totalTokens();
  EXPECT_EQ(totals.at("a"), 6);
  EXPECT_EQ(totals.at("b"), 3);
  // Everything was released: all requests must be grantable again.
  rig.managers[1]->request({{"a", 6}, {"b", 3}}, seconds(10));
}

TEST(Tokens, ReaderWriterProtocol) {
  // Paper §4.1: readers hold >= 1 token, writers hold all tokens.
  constexpr std::int64_t kReaders = 3;
  TokenRig rig(3, {{"doc", kReaders}});
  std::atomic<int> readers{0};
  std::atomic<int> writers{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(7 * i + 1);
      for (int op = 0; op < 20; ++op) {
        if (rng.chance(0.3)) {
          rig.managers[i]->request({{"doc", TokenRequest::kAllTokens}},
                                   seconds(20));
          if (++writers != 1 || readers != 0) violated = true;
          std::this_thread::sleep_for(microseconds(200));
          --writers;
          rig.managers[i]->release({{"doc", TokenRequest::kAllTokens}});
        } else {
          rig.managers[i]->request({{"doc", 1}}, seconds(20));
          ++readers;
          if (writers != 0) violated = true;
          std::this_thread::sleep_for(microseconds(100));
          --readers;
          rig.managers[i]->release({{"doc", 1}});
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated) << "read/write exclusion violated";
}

TEST(Tokens, DeadlockDetectedOnTwoCycle) {
  // Paper: "If the token managers detect a deadlock an exception is
  // raised" — the hold-and-wait two-cycle: 0 holds A wants B, 1 holds B
  // wants A.
  TokenRig rig(2, {{"A", 1}, {"B", 1}});
  rig.managers[0]->request({{"A", 1}});
  rig.managers[1]->request({{"B", 1}});
  std::atomic<int> deadlocks{0};
  std::thread t0([&] {
    try {
      rig.managers[0]->request({{"B", 1}}, seconds(10));
      rig.managers[0]->release({{"B", 1}});
    } catch (const DeadlockError&) {
      ++deadlocks;
    }
  });
  std::thread t1([&] {
    try {
      rig.managers[1]->request({{"A", 1}}, seconds(10));
      rig.managers[1]->release({{"A", 1}});
    } catch (const DeadlockError&) {
      ++deadlocks;
    }
  });
  t0.join();
  t1.join();
  EXPECT_GE(deadlocks.load(), 1) << "no deadlock detected";
  // The aborted request returned its partial grants: the system recovers.
  rig.managers[0]->release({{"A", 1}});
  rig.managers[1]->release({{"B", 1}});
  rig.managers[0]->request({{"A", 1}, {"B", 1}}, seconds(10));
}

TEST(Tokens, DeadlockDetectedOnThreeCycle) {
  TokenRig rig(3, {{"A", 1}, {"B", 1}, {"C", 1}});
  rig.managers[0]->request({{"A", 1}});
  rig.managers[1]->request({{"B", 1}});
  rig.managers[2]->request({{"C", 1}});
  std::atomic<int> deadlocks{0};
  const auto chase = [&](std::size_t self, const char* want) {
    try {
      rig.managers[self]->request({{want, 1}}, seconds(10));
      rig.managers[self]->release({{want, 1}});
    } catch (const DeadlockError&) {
      ++deadlocks;
    }
  };
  std::thread t0(chase, 0, "B");
  std::thread t1(chase, 1, "C");
  std::thread t2(chase, 2, "A");
  t0.join();
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
}

TEST(Tokens, NoFalseDeadlockUnderContention) {
  // Heavy contention on one colour with release-before-request discipline
  // must never report deadlock (paper: avoided "if dapplets release all
  // resources before next requesting resources").
  TokenRig rig(3, {{"hot", 1}});
  std::atomic<int> deadlocks{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      for (int op = 0; op < 15; ++op) {
        try {
          rig.managers[i]->request({{"hot", 1}}, seconds(30));
          std::this_thread::sleep_for(milliseconds(20));  // probes fire
          rig.managers[i]->release({{"hot", 1}});
        } catch (const DeadlockError&) {
          ++deadlocks;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(deadlocks.load(), 0) << "false positive deadlock";
}

TEST(Tokens, TimestampFairnessEarlierRequestWinsTheQueue) {
  TokenRig rig(3, {{"fair", 1}});
  rig.managers[0]->request({{"fair", 1}});
  // Queue two waiters in timestamp order: manager 1 requests first.
  std::atomic<int> order{0};
  std::atomic<int> firstServed{-1};
  std::thread w1([&] {
    rig.managers[1]->request({{"fair", 1}}, seconds(10));
    int expected = -1;
    firstServed.compare_exchange_strong(expected, 1);
    rig.managers[1]->release({{"fair", 1}});
  });
  std::this_thread::sleep_for(milliseconds(100));  // ensure ts(1) < ts(2)
  std::thread w2([&] {
    rig.managers[2]->request({{"fair", 1}}, seconds(10));
    int expected = -1;
    firstServed.compare_exchange_strong(expected, 2);
    rig.managers[2]->release({{"fair", 1}});
  });
  std::this_thread::sleep_for(milliseconds(100));
  rig.managers[0]->release({{"fair", 1}});
  w1.join();
  w2.join();
  EXPECT_EQ(firstServed.load(), 1)
      << "later-timestamped request served first";
  (void)order;
}

TEST(Tokens, MultiColorRequestIsAtomicOnFailure) {
  TokenRig rig(2, {{"x", 2}, {"y", 2}});
  // A request with an unknown colour must not leave x tokens held.
  EXPECT_THROW(rig.managers[0]->request({{"x", 1}, {"ghost", 1}}),
               TokenError);
  std::this_thread::sleep_for(milliseconds(100));  // returns drain
  auto totals = rig.managers[1]->totalTokens();
  EXPECT_EQ(totals.at("x"), 2);
  rig.managers[1]->request({{"x", 2}}, seconds(5));  // all free
}

TEST(DistributedSemaphore, MutualExclusionAcrossDapplets) {
  TokenRig rig(3, {{"sem", 1}});
  DistributedSemaphore sem0(*rig.managers[0], "sem");
  DistributedSemaphore sem1(*rig.managers[1], "sem");
  DistributedSemaphore sem2(*rig.managers[2], "sem");
  DistributedSemaphore* sems[] = {&sem0, &sem1, &sem2};
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      for (int op = 0; op < 10; ++op) {
        sems[i]->acquire(1, seconds(20));
        if (++inside != 1) violated = true;
        std::this_thread::sleep_for(microseconds(300));
        --inside;
        sems[i]->release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated);
}

TEST(Tokens, StatsAreMaintained) {
  TokenRig rig(2, {{"s", 2}});
  rig.managers[0]->request({{"s", 1}});
  rig.managers[0]->release({{"s", 1}});
  const auto stats0 = rig.managers[0]->stats();
  EXPECT_EQ(stats0.requestsGranted, 1u);
  // The home of "s" (whichever member) issued a grant and served a release.
  const auto home = TokenManager::homeOfColor("s", 2);
  const auto homeStats = rig.managers[home]->stats();
  EXPECT_GE(homeStats.grantsIssued, 1u);
  EXPECT_GE(homeStats.releasesServed, 1u);
}

}  // namespace
}  // namespace dapple
