// Reactor runtime: event-loop pool + hashed timer wheel.  These tests pin
// the scheduling semantics the async dapplet API is built on — tick
// quantization (zero-delay fires next tick), self-cancel from inside a
// callback, fixed-rate periodic re-arm, wheel cascades past one revolution
// — and run the whole stack event-driven: dapplets on a shared reactor,
// retransmission ticks on the wheel, deliveries through Inbox::onMessage.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/core/reactor.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/testkit/seed.hpp"
#include "dapple/testkit/virtual_clock.hpp"
#include "dapple/util/time.hpp"

namespace dapple {
namespace {

Reactor::Options onClock(testkit::VirtualClock& clock, unsigned threads = 1) {
  Reactor::Options opts;
  opts.threads = threads;
  opts.clock = &clock;
  return opts;
}

TEST(Reactor, PostRunsTaskOnLoopThread) {
  Reactor reactor;
  std::promise<std::thread::id> ran;
  reactor.post([&] { ran.set_value(std::this_thread::get_id()); });
  EXPECT_NE(ran.get_future().get(), std::this_thread::get_id());
  EXPECT_GE(reactor.stats().tasksRun, 1u);
}

TEST(Reactor, ThreadCountDefaultsAndClamps) {
  Reactor::Options one;
  one.threads = 1;
  EXPECT_EQ(Reactor(one).threadCount(), 1u);
  Reactor def;  // 0 selects hardware_concurrency (>= 1)
  EXPECT_GE(def.threadCount(), 1u);
}

// A zero-delay timer is quantized UP to the next wheel tick: it fires at
// exactly start + one granule of virtual time, never "immediately".
TEST(Reactor, ZeroDelayTimerFiresOnNextTick) {
  testkit::VirtualClock clock;
  Reactor reactor(onClock(clock));
  std::promise<TimePoint> fired;
  TimePoint start;
  {
    // Main is a clock guest: once the loop thread parks, virtual time can
    // advance between our statements.  Hold a worker scope so the `start`
    // capture and the arm happen at the same virtual instant.  Announce
    // first — announce/begin pairing is a counter, and an unannounced
    // begin on main would consume a spawning thread's pending announce.
    clock.announceWorker();
    ClockSource::WorkerScope arming(clock);
    start = clock.now();
    reactor.after(Duration::zero(), [&] { fired.set_value(clock.now()); });
  }
  EXPECT_EQ(fired.get_future().get(), start + milliseconds(1));
}

// Two timers due on the same tick of the same loop fire in arming order
// (the wheel sorts same-tick timers by sequence number).
TEST(Reactor, SameTickTimersFireInArmingOrder) {
  testkit::VirtualClock clock;
  Reactor reactor(onClock(clock, 1));
  std::mutex m;
  std::vector<int> order;
  std::promise<void> both;
  auto record = [&](int id) {
    std::scoped_lock lock(m);
    order.push_back(id);
    if (order.size() == 2) both.set_value();
  };
  {
    // Both timers must land on the same tick, so arm them at one instant.
    clock.announceWorker();  // see ZeroDelayTimerFiresOnNextTick
    ClockSource::WorkerScope arming(clock);
    reactor.after(milliseconds(3), [&, record] { record(1); });
    reactor.after(milliseconds(3), [&, record] { record(2); });
  }
  both.get_future().wait();
  std::scoped_lock lock(m);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// A periodic timer re-arms at fixed rate: firings land at exact multiples
// of the period in virtual time, with no drift and no bunching.
TEST(Reactor, PeriodicReArmsAtFixedRateUnderVirtualClock) {
  testkit::VirtualClock clock;
  Reactor reactor(onClock(clock));
  TimePoint start;
  std::mutex m;
  std::vector<TimePoint> fires;
  std::promise<void> enough;
  Reactor::TimerHandle handle;
  {
    // The worker scope pins virtual time while we arm, which also orders
    // the `handle` assignment before the first firing can read it to
    // self-cancel (the callback only runs after time advances).
    clock.announceWorker();  // see ZeroDelayTimerFiresOnNextTick
    ClockSource::WorkerScope arming(clock);
    start = clock.now();
    handle = reactor.every(milliseconds(10), [&] {
      std::scoped_lock lock(m);
      fires.push_back(clock.now());
      if (fires.size() == 5) {
        handle.cancel();  // self-cancel: periodic must not re-arm after this
        enough.set_value();
      }
    });
  }
  enough.get_future().wait();
  // Let several more periods elapse: the cancelled timer must stay silent.
  clock.sleepFor(milliseconds(50));
  std::scoped_lock lock(m);
  ASSERT_EQ(fires.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fires[i], start + milliseconds(10) * (i + 1)) << "firing " << i;
  }
  EXPECT_FALSE(handle.active());
  EXPECT_GE(reactor.stats().timersCancelled, 1u);
}

// Deadlines past one wheel revolution cascade correctly: a slot holds
// timers many revolutions out, and each fires on its own revolution — at
// the exact deadline, not a revolution early.
TEST(Reactor, WheelCascadePastOneRevolution) {
  testkit::VirtualClock clock;
  Reactor::Options opts = onClock(clock);
  opts.wheelSlots = 8;  // tiny ring: one revolution = 8 ms
  Reactor reactor(opts);
  // 3 ms (inside the ring), 8 ms (exactly one revolution), 11 ms (same slot
  // as 3 ms, next revolution), 20 ms (2.5 revolutions), 64 ms (8 of them).
  const std::vector<int> delaysMs = {3, 8, 11, 20, 64};
  std::mutex m;
  std::vector<std::pair<int, TimePoint>> fires;
  std::promise<void> all;
  TimePoint start;
  {
    // All five deadlines must be relative to one instant; without the
    // worker scope the loop thread parks after the first arm and virtual
    // time advances between iterations of this loop.
    clock.announceWorker();  // see ZeroDelayTimerFiresOnNextTick
    ClockSource::WorkerScope arming(clock);
    start = clock.now();
    for (int d : delaysMs) {
      reactor.after(milliseconds(d), [&, d] {
        std::scoped_lock lock(m);
        fires.emplace_back(d, clock.now());
        if (fires.size() == delaysMs.size()) all.set_value();
      });
    }
  }
  all.get_future().wait();
  std::scoped_lock lock(m);
  ASSERT_EQ(fires.size(), delaysMs.size());
  for (std::size_t i = 0; i < delaysMs.size(); ++i) {
    EXPECT_EQ(fires[i].first, delaysMs[i]) << "firing order at " << i;
    EXPECT_EQ(fires[i].second, start + milliseconds(delaysMs[i]))
        << "deadline of " << delaysMs[i] << " ms timer";
  }
}

// cancel() from OUTSIDE the callback waits for an in-flight invocation: the
// moment it returns, the callback is guaranteed to never run again.
TEST(Reactor, CancelFromOutsideWaitsForInflightCallback) {
  Reactor::Options opts;
  opts.threads = 1;
  Reactor reactor(opts);
  std::promise<void> started;
  std::atomic<bool> finished{false};
  Reactor::TimerHandle handle = reactor.after(milliseconds(1), [&] {
    started.set_value();
    std::this_thread::sleep_for(milliseconds(100));
    finished.store(true);
  });
  started.get_future().wait();  // callback is now mid-flight
  handle.cancel();
  EXPECT_TRUE(finished.load())
      << "cancel() returned while the callback was still running";
  EXPECT_FALSE(handle.active());
}

TEST(Reactor, CancelBeforeFirePreventsCallback) {
  testkit::VirtualClock clock;
  Reactor reactor(onClock(clock));
  std::atomic<bool> fired{false};
  Reactor::TimerHandle handle;
  {
    // Pin virtual time across arm + cancel: as a guest, main can lose 5ms
    // (and the race) to auto-advance between the two calls.
    clock.announceWorker();  // see ZeroDelayTimerFiresOnNextTick
    ClockSource::WorkerScope arming(clock);
    handle = reactor.after(milliseconds(5), [&] { fired.store(true); });
    EXPECT_TRUE(handle.active());
    handle.cancel();
  }
  EXPECT_FALSE(handle.active());
  clock.sleepFor(milliseconds(20));
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(reactor.stats().timersPending, 0u);
}

TEST(Reactor, StopDropsPendingTimersAndTasks) {
  Reactor reactor;
  std::atomic<bool> fired{false};
  Reactor::TimerHandle handle =
      reactor.after(std::chrono::hours(1), [&] { fired.store(true); });
  EXPECT_TRUE(handle.active());
  reactor.stop();
  EXPECT_FALSE(handle.active());
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(reactor.stats().timersPending, 0u);
  handle.cancel();  // after stop: still safe, still idempotent
}

// A throwing callback is contained: the loop logs, survives, and keeps
// serving later timers.
TEST(Reactor, CallbackExceptionDoesNotKillLoop) {
  testkit::VirtualClock clock;
  Reactor reactor(onClock(clock, 1));
  std::promise<void> survived;
  reactor.after(milliseconds(1), [] { throw Error("boom"); });
  reactor.after(milliseconds(2), [&] { survived.set_value(); });
  survived.get_future().wait();
  EXPECT_EQ(reactor.stats().timersFired, 2u);
}

// === the async dapplet surface =============================================

DappletConfig reactorConfig(testkit::VirtualClock& clock, Reactor& reactor,
                            std::uint32_t host) {
  DappletConfig cfg;
  cfg.host = host;
  cfg.clock = &clock;
  cfg.runtime.reactor = &reactor;
  return cfg;
}

// Full event-driven stack: two dapplets share one reactor, the receiver
// takes deliveries through Inbox::onMessage (no blocked thread), and the
// sender's retransmission ticks run on the wheel (externalTick) — proven by
// making the link lossy, so nothing arrives without wheel-driven resends.
TEST(ReactorDapplet, OnMessageDeliversInOrderOverLossyLink) {
  const std::uint64_t seed = testkit::testSeed(4242);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  Reactor reactor(onClock(clock, 2));
  SimNetwork::Options simOpts;
  simOpts.clock = &clock;
  SimNetwork net(seed, simOpts);
  net.setDefaultLink(LinkParams{microseconds(200), microseconds(500),
                                /*loss=*/0.15, /*dup=*/0.05});

  Dapplet sender(net, "sender", reactorConfig(clock, reactor, 1));
  Dapplet receiver(net, "receiver", reactorConfig(clock, reactor, 2));
  // externalTick was folded in by normalized(): no timer thread exists.
  EXPECT_TRUE(sender.config().reliable.externalTick);

  Inbox& in = receiver.createInbox("sink");
  std::mutex m;
  std::vector<long long> got;
  std::promise<void> all;
  constexpr int kCount = 50;
  in.onMessage([&](Delivery del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    ASSERT_NE(msg, nullptr);
    std::scoped_lock lock(m);
    got.push_back(msg->get("i").asInt());
    if (got.size() == kCount) all.set_value();
  });

  Outbox& out = sender.createOutbox();
  out.add(in.ref());
  for (int i = 0; i < kCount; ++i) {
    DataMessage msg("swarm.item");
    msg.set("i", Value(static_cast<long long>(i)));
    out.send(msg);
  }
  all.get_future().wait();
  std::scoped_lock lock(m);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], i) << "FIFO order broken at " << i;
  }
}

// onMessage(nullptr) is a synchronous uninstall barrier, and messages
// arriving afterwards stay queued for blocking receives.
TEST(ReactorDapplet, HandlerUninstallIsABarrier) {
  testkit::VirtualClock clock;
  Reactor reactor(onClock(clock));
  SimNetwork::Options simOpts;
  simOpts.clock = &clock;
  SimNetwork net(testkit::testSeed(7), simOpts);
  Dapplet d(net, "solo", reactorConfig(clock, reactor, 1));
  Inbox& in = d.createInbox("ctl");
  Outbox& out = d.createOutbox();
  out.add(in.ref());

  std::atomic<int> handled{0};
  in.onMessage([&](Delivery) { handled.fetch_add(1); });
  out.send(DataMessage("first"));
  while (handled.load() == 0) clock.sleepFor(milliseconds(1));
  in.onMessage(nullptr);
  EXPECT_FALSE(in.hasHandler());

  out.send(DataMessage("second"));
  ASSERT_TRUE(d.flush(seconds(5)));
  auto del = in.receiveFor(seconds(1));
  ASSERT_TRUE(del.has_value());
  EXPECT_EQ(handled.load(), 1);
}

// onMessage from inside the handler can never be honored — removal is a
// barrier on the very invocation making the call — so it fails loudly with
// Error instead of deadlocking on the barrier.
TEST(ReactorDapplet, ReentrantOnMessageThrows) {
  testkit::VirtualClock clock;
  Reactor reactor(onClock(clock));
  SimNetwork::Options simOpts;
  simOpts.clock = &clock;
  SimNetwork net(testkit::testSeed(11), simOpts);
  Dapplet d(net, "reent", reactorConfig(clock, reactor, 1));
  Inbox& in = d.createInbox("ctl");
  Outbox& out = d.createOutbox();
  out.add(in.ref());

  std::atomic<bool> threw{false};
  in.onMessage([&](Delivery) {
    try {
      in.onMessage(nullptr);
    } catch (const Error&) {
      threw.store(true);
    }
  });
  out.send(DataMessage("poke"));
  while (!threw.load()) clock.sleepFor(milliseconds(1));
  in.onMessage(nullptr);  // from outside the handler: still works
  EXPECT_FALSE(in.hasHandler());
}

// Without a configured reactor the async APIs lazily create a small owned
// pool on the dapplet's clock; stop() shuts it down.
TEST(ReactorDapplet, OwnedReactorIsLazyAndStopsWithDapplet) {
  testkit::VirtualClock clock;
  SimNetwork::Options simOpts;
  simOpts.clock = &clock;
  SimNetwork net(testkit::testSeed(9), simOpts);
  DappletConfig cfg;
  cfg.clock = &clock;
  Dapplet d(net, "lazy", cfg);
  EXPECT_FALSE(d.config().reliable.externalTick);  // legacy timer thread

  std::promise<TimePoint> fired;
  TimePoint start;
  {
    clock.announceWorker();  // see ZeroDelayTimerFiresOnNextTick
    ClockSource::WorkerScope arming(clock);
    start = clock.now();
    d.after(milliseconds(4), [&] { fired.set_value(clock.now()); });
  }
  EXPECT_EQ(fired.get_future().get(), start + milliseconds(4));
  EXPECT_EQ(&d.reactor().clock(), static_cast<ClockSource*>(&clock));
  d.stop();  // must also stop the owned reactor without deadlock
}

}  // namespace
}  // namespace dapple
