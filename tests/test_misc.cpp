// Remaining coverage: the logger, stopwatch, address/ref hashing, session
// wire-message round trips, and agent idempotency against duplicate
// control messages.
#include <gtest/gtest.h>

#include <thread>
#include <unordered_set>

#include "dapple/core/session_msgs.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/core/session.hpp"
#include "dapple/util/log.hpp"
#include "dapple/util/time.hpp"

namespace dapple {
namespace {

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

TEST(Log, SinkReceivesFormattedLinesAtOrAboveLevel) {
  std::vector<std::pair<log::Level, std::string>> lines;
  log::setSink([&](log::Level lvl, std::string_view text) {
    lines.emplace_back(lvl, std::string(text));
  });
  const log::Level old = log::level();
  log::setLevel(log::Level::kInfo);

  DAPPLE_LOG(kDebug, "test") << "filtered " << 1;
  DAPPLE_LOG(kInfo, "test") << "kept " << 2;
  DAPPLE_LOG(kError, "test") << "kept " << 3;

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, log::Level::kInfo);
  EXPECT_EQ(lines[0].second, "test: kept 2");
  EXPECT_EQ(lines[1].second, "test: kept 3");

  log::setLevel(old);
  log::setSink(nullptr);
}

TEST(Log, EnabledReflectsLevel) {
  const log::Level old = log::level();
  log::setLevel(log::Level::kWarn);
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
  EXPECT_TRUE(log::enabled(log::Level::kWarn));
  EXPECT_TRUE(log::enabled(log::Level::kError));
  log::setLevel(old);
}

TEST(Log, StreamExpressionNotEvaluatedWhenDisabled) {
  const log::Level old = log::level();
  log::setLevel(log::Level::kOff);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  DAPPLE_LOG(kError, "test") << expensive();
  EXPECT_EQ(evaluations, 0);
  log::setLevel(old);
}

// ---------------------------------------------------------------------------
// time
// ---------------------------------------------------------------------------

TEST(Time, StopwatchMeasuresElapsed) {
  Stopwatch watch;
  std::this_thread::sleep_for(milliseconds(25));
  EXPECT_GE(watch.elapsedMicros(), 20000);
  EXPECT_GE(watch.elapsedSeconds(), 0.02);
  watch.reset();
  EXPECT_LT(watch.elapsedMicros(), 20000);
}

// ---------------------------------------------------------------------------
// hashing
// ---------------------------------------------------------------------------

TEST(Hashing, NodeAddressUsableInUnorderedSet) {
  std::unordered_set<NodeAddress> set;
  for (std::uint32_t h = 1; h <= 50; ++h) {
    for (std::uint16_t p = 1; p <= 4; ++p) set.insert(NodeAddress{h, p});
  }
  EXPECT_EQ(set.size(), 200u);
  EXPECT_TRUE(set.count(NodeAddress{25, 3}));
  EXPECT_FALSE(set.count(NodeAddress{25, 5}));
}

TEST(Hashing, InboxRefUsableInUnorderedSet) {
  std::unordered_set<InboxRef> set;
  set.insert(InboxRef{NodeAddress{1, 1}, 7, ""});
  set.insert(InboxRef{NodeAddress{1, 1}, 8, ""});
  set.insert(InboxRef{NodeAddress{1, 1}, 0, "named"});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count(InboxRef{NodeAddress{1, 1}, 0, "named"}));
}

// ---------------------------------------------------------------------------
// session wire messages
// ---------------------------------------------------------------------------

TEST(SessionMsgs, InviteRoundTrip) {
  InviteMsg msg;
  msg.sessionId = "s-1";
  msg.app = "calendar.flat";
  msg.initiatorName = "director";
  msg.memberName = "mani";
  msg.replyTo = InboxRef{NodeAddress{9, 9}, 4, ""};
  msg.inboxesToCreate = {"requests", "extra"};
  msg.readKeys = {"cal.busy"};
  msg.writeKeys = {"cal.busy"};
  ValueMap params;
  params["role"] = Value("member");
  msg.params = Value(std::move(params));

  auto back = decodeMessage(encodeMessage(msg));
  const auto& typed = messageAs<InviteMsg>(*back);
  EXPECT_EQ(typed.sessionId, "s-1");
  EXPECT_EQ(typed.replyTo, msg.replyTo);
  EXPECT_EQ(typed.inboxesToCreate, msg.inboxesToCreate);
  EXPECT_EQ(typed.readKeys, msg.readKeys);
  EXPECT_EQ(typed.params.at("role").asString(), "member");
}

TEST(SessionMsgs, WireAndUnbindRoundTrip) {
  WireMsg wire;
  wire.sessionId = "s-2";
  Binding b;
  b.outboxName = "out";
  b.targets = {InboxRef{NodeAddress{1, 2}, 3, ""},
               InboxRef{NodeAddress{4, 5}, 0, "byname"}};
  wire.bindings = {b};
  auto back = decodeMessage(encodeMessage(wire));
  EXPECT_EQ(messageAs<WireMsg>(*back).bindings, wire.bindings);

  UnbindMsg unbind;
  unbind.sessionId = "s-2";
  unbind.bindings = {b};
  auto back2 = decodeMessage(encodeMessage(unbind));
  EXPECT_EQ(messageAs<UnbindMsg>(*back2).bindings, unbind.bindings);
}

TEST(SessionMsgs, ReplyAndLifecycleRoundTrips) {
  InviteReplyMsg reply;
  reply.sessionId = "s-3";
  reply.memberName = "m";
  reply.accepted = false;
  reply.reason = "interference with a concurrent session";
  reply.inboxRefs["in"] = InboxRef{NodeAddress{7, 7}, 2, ""};
  auto r = decodeMessage(encodeMessage(reply));
  EXPECT_EQ(messageAs<InviteReplyMsg>(*r).reason, reply.reason);
  EXPECT_EQ(messageAs<InviteReplyMsg>(*r).inboxRefs.at("in"),
            reply.inboxRefs.at("in"));

  DoneMsg done;
  done.sessionId = "s-3";
  done.memberName = "m";
  ValueMap result;
  result["day"] = Value(12);
  done.result = Value(std::move(result));
  auto d = decodeMessage(encodeMessage(done));
  EXPECT_EQ(messageAs<DoneMsg>(*d).result.at("day").asInt(), 12);

  UnlinkMsg unlink;
  unlink.sessionId = "s-3";
  unlink.reason = "aborted";
  auto u = decodeMessage(encodeMessage(unlink));
  EXPECT_EQ(messageAs<UnlinkMsg>(*u).reason, "aborted");
}

// ---------------------------------------------------------------------------
// agent idempotency under duplicate control traffic
// ---------------------------------------------------------------------------

TEST(AgentIdempotency, DuplicateInviteReconfirmsSameInboxes) {
  SimNetwork net(61);
  Dapplet member(net, "m");
  SessionAgent agent(member);
  agent.registerApp("noop", [](SessionContext&) {});

  Dapplet initD(net, "init");
  Inbox& replies = initD.createInbox();
  Outbox& ctl = initD.createOutbox();
  ctl.add(agent.controlRef());

  InviteMsg invite;
  invite.sessionId = "dup-1";
  invite.app = "noop";
  invite.initiatorName = "init";
  invite.memberName = "m";
  invite.replyTo = replies.ref();
  invite.inboxesToCreate = {"a", "b"};
  invite.params = Value(ValueMap{});

  ctl.send(invite);
  ctl.send(invite);  // duplicate (e.g. an initiator retry)

  const auto first = replies.receiveAs<InviteReplyMsg>(seconds(5));
  ASSERT_TRUE(first.accepted);
  const auto firstRefs = first.inboxRefs;
  const auto second = replies.receiveAs<InviteReplyMsg>(seconds(5));
  ASSERT_TRUE(second.accepted);
  EXPECT_EQ(second.inboxRefs, firstRefs)
      << "duplicate invite must not create new inboxes";
  EXPECT_EQ(agent.stats().invitesAccepted, 1u);

  initD.stop();
  member.stop();
}

TEST(AgentIdempotency, UnlinkForUnknownSessionIsIgnored) {
  SimNetwork net(62);
  Dapplet member(net, "m");
  SessionAgent agent(member);
  Dapplet initD(net, "init");
  Outbox& ctl = initD.createOutbox();
  ctl.add(agent.controlRef());
  UnlinkMsg unlink;
  unlink.sessionId = "never-existed";
  ctl.send(unlink);
  ASSERT_TRUE(initD.flush(seconds(5)));
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(agent.stats().sessionsUnlinked, 0u);
  initD.stop();
  member.stop();
}

}  // namespace
}  // namespace dapple
