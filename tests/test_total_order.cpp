// Tests for the total-order multicast service: agreement (all members
// deliver the same sequence), validity (everything published is
// delivered), and the timestamp/lower-id order of §4.2.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "dapple/net/sim.hpp"
#include "dapple/services/clocks/total_order.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

struct TobRig {
  explicit TobRig(std::size_t n, std::uint64_t seed = 61,
                  LinkParams link = LinkParams{microseconds(200),
                                               microseconds(300), 0.0, 0.0})
      : net(seed) {
    net.setDefaultLink(link);
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "g" + std::to_string(i)));
      groups.push_back(
          std::make_unique<TotalOrderGroup>(*dapplets.back(), "grp"));
    }
    std::vector<InboxRef> refs;
    for (auto& g : groups) refs.push_back(g->ref());
    for (std::size_t i = 0; i < n; ++i) groups[i]->attach(refs, i);
  }

  ~TobRig() {
    groups.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TotalOrderGroup>> groups;
};

TEST(TotalOrder, SingleMemberDeliversOwnMessagesInOrder) {
  TobRig rig(1);
  for (int i = 0; i < 10; ++i) {
    rig.groups[0]->publish(Value(i));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rig.groups[0]->take(seconds(5)).payload.asInt(), i);
  }
}

TEST(TotalOrder, EveryMemberDeliversEverything) {
  TobRig rig(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (int k = 0; k < 5; ++k) {
      rig.groups[i]->publish(
          Value(static_cast<long long>(i * 100 + k)));
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    std::set<std::int64_t> seen;
    for (int k = 0; k < 15; ++k) {
      seen.insert(rig.groups[i]->take(seconds(10)).payload.asInt());
    }
    EXPECT_EQ(seen.size(), 15u);
  }
}

class TotalOrderAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(TotalOrderAgreement, AllMembersDeliverTheSameSequence) {
  const auto [n, perMember] = GetParam();
  TobRig rig(n, 61 + n);
  // Concurrent publishers on every member.
  std::vector<std::thread> publishers;
  for (std::size_t i = 0; i < n; ++i) {
    publishers.emplace_back([&, i] {
      Rng rng(i + 1);
      for (int k = 0; k < perMember; ++k) {
        rig.groups[i]->publish(
            Value(static_cast<long long>(i * 1000 + k)));
        if (rng.chance(0.3)) {
          std::this_thread::sleep_for(microseconds(rng.below(400)));
        }
      }
    });
  }
  for (auto& t : publishers) t.join();

  const int total = static_cast<int>(n) * perMember;
  std::vector<std::vector<std::int64_t>> sequences(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 0; k < total; ++k) {
      sequences[i].push_back(
          rig.groups[i]->take(seconds(20)).payload.asInt());
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(sequences[i], sequences[0])
        << "member " << i << " delivered a different global order";
  }
  // Per-publisher FIFO must be embedded in the global order.
  for (std::size_t p = 0; p < n; ++p) {
    std::int64_t last = -1;
    for (std::int64_t v : sequences[0]) {
      if (static_cast<std::size_t>(v / 1000) == p) {
        EXPECT_GT(v, last);
        last = v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLoads, TotalOrderAgreement,
    ::testing::Values(std::make_tuple(std::size_t{2}, 20),
                      std::make_tuple(std::size_t{3}, 15),
                      std::make_tuple(std::size_t{5}, 10),
                      std::make_tuple(std::size_t{4}, 25)));

TEST(TotalOrder, DeliveryOrderIsStampOrder) {
  TobRig rig(2);
  rig.groups[0]->publish(Value("a"));
  rig.groups[1]->publish(Value("b"));
  LamportStamp prev{0, 0};
  for (int k = 0; k < 2; ++k) {
    const auto item = rig.groups[0]->take(seconds(10));
    EXPECT_LT(prev, item.stamp) << "stamps must be strictly increasing";
    prev = item.stamp;
  }
}

TEST(TotalOrder, TakeTimesOutWhenGroupIdle) {
  TobRig rig(2);
  EXPECT_THROW(rig.groups[0]->take(milliseconds(100)), TimeoutError);
  EXPECT_FALSE(rig.groups[0]->tryTake().has_value());
}

TEST(TotalOrder, StatsAccumulate) {
  TobRig rig(2);
  rig.groups[0]->publish(Value(1));
  rig.groups[1]->take(seconds(10));
  rig.groups[0]->take(seconds(10));
  EXPECT_EQ(rig.groups[0]->stats().published, 1u);
  EXPECT_EQ(rig.groups[0]->stats().delivered, 1u);
  EXPECT_GE(rig.groups[1]->stats().acksSent, 1u);
}

TEST(TotalOrder, SurvivesLossyNetwork) {
  // The reliable layer below masks loss entirely.
  TobRig rig(3, 65,
             LinkParams{microseconds(200), microseconds(500), 0.05, 0.05});
  for (std::size_t i = 0; i < 3; ++i) {
    for (int k = 0; k < 5; ++k) {
      rig.groups[i]->publish(Value(static_cast<long long>(i * 10 + k)));
    }
  }
  std::vector<std::int64_t> first;
  for (int k = 0; k < 15; ++k) {
    first.push_back(rig.groups[0]->take(seconds(30)).payload.asInt());
  }
  for (std::size_t i = 1; i < 3; ++i) {
    std::vector<std::int64_t> seq;
    for (int k = 0; k < 15; ++k) {
      seq.push_back(rig.groups[i]->take(seconds(30)).payload.asInt());
    }
    EXPECT_EQ(seq, first);
  }
}

}  // namespace
}  // namespace dapple
