// End-to-end smoke tests: the full stack (serialization, sim network,
// reliable ordering, dapplets, sessions, calendar app) in one binary.
#include <gtest/gtest.h>

#include "dapple/apps/calendar.hpp"
#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"

namespace dapple {
namespace {

using apps::CalendarBook;

TEST(Smoke, PingPongOverSimNetwork) {
  SimNetwork net(42);
  Dapplet alice(net, "alice");
  Dapplet bob(net, "bob");

  Inbox& bobIn = bob.createInbox("in");
  Inbox& aliceIn = alice.createInbox("in");
  Outbox& aliceOut = alice.createOutbox();
  Outbox& bobOut = bob.createOutbox();
  aliceOut.add(bobIn.ref());
  bobOut.add(aliceIn.ref());

  DataMessage ping("ping");
  ping.set("n", Value(7));
  aliceOut.send(ping);

  auto got = bobIn.receiveFor(seconds(5));
  ASSERT_TRUE(got.has_value());
  const auto& received = got->as<DataMessage>();
  EXPECT_EQ(received.kind(), "ping");
  EXPECT_EQ(received.get("n").asInt(), 7);
  EXPECT_LT(got->sentAt, got->receivedAt);  // snapshot criterion

  DataMessage pong("pong");
  bobOut.send(pong);
  EXPECT_EQ(aliceIn.receiveAs<DataMessage>(seconds(5)).kind(), "pong");

  alice.stop();
  bob.stop();
}

TEST(Smoke, FlatCalendarSessionSchedulesMeeting) {
  SimNetwork net(7);
  net.setDefaultLink(LinkParams{microseconds(200), microseconds(100), 0.0,
                                0.0});

  Dapplet director(net, "director");
  std::vector<std::unique_ptr<Dapplet>> members;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;

  const std::vector<std::string> names = {"mani", "herb", "dan", "ken"};
  Rng rng(123);
  for (const std::string& name : names) {
    members.push_back(std::make_unique<Dapplet>(net, name));
    stores.push_back(std::make_unique<StateStore>());
    CalendarBook::populate(*stores.back(), rng, 30, 0.5);
    SessionAgent::Config cfg;
    cfg.store = stores.back().get();
    agents.push_back(
        std::make_unique<SessionAgent>(*members.back(), cfg));
    apps::registerCalendarApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }
  // The director participates as the coordinator.
  SessionAgent directorAgent(director);
  apps::registerCalendarApp(directorAgent);
  directory.put("director", directorAgent.controlRef());

  Initiator initiator(director);
  auto plan = apps::flatCalendarPlan(directory, "director", names,
                                     /*startDay=*/0, /*window=*/14,
                                     /*maxRounds=*/4);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok) << [&] {
    std::string all;
    for (auto& [m, r] : result.rejections) all += m + ": " + r + "; ";
    return all;
  }();

  auto done = initiator.awaitCompletion(result.sessionId, seconds(20));
  auto outcome = apps::parseOutcome(done.at("director"));
  ASSERT_TRUE(outcome.scheduled);
  // Every member's persistent calendar now shows the day as busy.
  for (auto& store : stores) {
    EXPECT_FALSE(CalendarBook::isFree(*store, outcome.day));
  }
  initiator.terminate(result.sessionId);

  director.stop();
  for (auto& m : members) m->stop();
}

}  // namespace
}  // namespace dapple
