// Tests for the directory service: registration, leases, expiry, lookup,
// prefix listing, and end-to-end use by an initiator.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/services/directory/directory_service.hpp"

namespace dapple {
namespace {

struct DirRig {
  DirRig() : net(71), serverD(net, "registry"), clientD(net, "client") {
    server = std::make_unique<DirectoryServer>(serverD);
    client = std::make_unique<DirectoryClient>(clientD, server->ref());
  }

  ~DirRig() {
    client.reset();
    server.reset();
    serverD.stop();
    clientD.stop();
  }

  InboxRef someRef(std::uint16_t port, const std::string& name) {
    return InboxRef{NodeAddress{42, port}, 0, name};
  }

  SimNetwork net;
  Dapplet serverD;
  Dapplet clientD;
  std::unique_ptr<DirectoryServer> server;
  std::unique_ptr<DirectoryClient> client;
};

TEST(DirectoryService, RegisterLookupRoundTrip) {
  DirRig rig;
  const InboxRef ref = rig.someRef(1, "ctl");
  rig.client->registerName("mani", ref);
  EXPECT_EQ(rig.client->lookup("mani"), ref);
  EXPECT_EQ(rig.server->size(), 1u);
}

TEST(DirectoryService, LookupUnknownThrows) {
  DirRig rig;
  EXPECT_THROW(rig.client->lookup("nobody"), AddressError);
}

TEST(DirectoryService, ReRegistrationReplacesAndInvalidatesOldLease) {
  DirRig rig;
  const auto lease1 = rig.client->registerName("x", rig.someRef(1, "a"));
  const auto lease2 = rig.client->registerName("x", rig.someRef(2, "b"));
  EXPECT_NE(lease1, lease2);
  EXPECT_EQ(rig.client->lookup("x").name, "b");
  EXPECT_FALSE(rig.client->refresh("x", lease1));
  EXPECT_TRUE(rig.client->refresh("x", lease2));
}

TEST(DirectoryService, UnregisterRequiresMatchingLease) {
  DirRig rig;
  const auto lease = rig.client->registerName("y", rig.someRef(3, "c"));
  EXPECT_FALSE(rig.client->unregister("y", lease + 99));
  EXPECT_TRUE(rig.client->unregister("y", lease));
  EXPECT_THROW(rig.client->lookup("y"), AddressError);
  EXPECT_FALSE(rig.client->unregister("y", lease));  // idempotent-ish
}

TEST(DirectoryService, LeasesExpire) {
  DirRig rig;
  rig.client->registerName("ephemeral", rig.someRef(4, "d"),
                           milliseconds(80));
  EXPECT_NO_THROW(rig.client->lookup("ephemeral"));
  std::this_thread::sleep_for(milliseconds(150));
  EXPECT_THROW(rig.client->lookup("ephemeral"), AddressError);
  EXPECT_EQ(rig.server->size(), 0u);
}

TEST(DirectoryService, RefreshKeepsEntryAlive) {
  DirRig rig;
  const auto lease = rig.client->registerName("alive", rig.someRef(5, "e"),
                                              milliseconds(150));
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(milliseconds(60));
    EXPECT_TRUE(rig.client->refresh("alive", lease));
  }
  EXPECT_NO_THROW(rig.client->lookup("alive"));
}

TEST(DirectoryService, PrefixListing) {
  DirRig rig;
  rig.client->registerName("calendar.mani", rig.someRef(1, "a"));
  rig.client->registerName("calendar.herb", rig.someRef(2, "b"));
  rig.client->registerName("design.ava", rig.someRef(3, "c"));
  Directory calendarOnly = rig.client->list("calendar.");
  EXPECT_EQ(calendarOnly.size(), 2u);
  EXPECT_TRUE(calendarOnly.has("calendar.mani"));
  EXPECT_FALSE(calendarOnly.has("design.ava"));
  Directory everything = rig.client->list();
  EXPECT_EQ(everything.size(), 3u);
}

TEST(DirectoryService, InitiatorUsesDiscoveredDirectory) {
  // Figure 2, with the directory *maintained* by the service: members
  // self-register their control inboxes; the initiator discovers them and
  // establishes a session without any out-of-band address exchange.
  SimNetwork net(72);
  Dapplet registryD(net, "registry");
  DirectoryServer registry(registryD);

  std::vector<std::unique_ptr<Dapplet>> members;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  for (int i = 0; i < 3; ++i) {
    members.push_back(
        std::make_unique<Dapplet>(net, "w" + std::to_string(i)));
    agents.push_back(std::make_unique<SessionAgent>(*members.back()));
    agents.back()->registerApp("noop", [](SessionContext&) {});
    // Each member registers itself, as a real deployment would.
    DirectoryClient self(*members.back(), registry.ref());
    self.registerName("worker." + std::to_string(i),
                      agents.back()->controlRef());
  }

  Dapplet initD(net, "init");
  DirectoryClient discovery(initD, registry.ref());
  Directory directory = discovery.list("worker.");
  ASSERT_EQ(directory.size(), 3u);

  Initiator initiator(initD);
  Initiator::Plan plan;
  plan.app = "noop";
  for (const std::string& name : directory.names()) {
    plan.members.push_back(Initiator::member(directory, name, {}));
  }
  auto result = initiator.establish(plan);
  EXPECT_TRUE(result.ok);
  initiator.awaitCompletion(result.sessionId, seconds(10));
  initiator.terminate(result.sessionId);

  agents.clear();
  initD.stop();
  registryD.stop();
  for (auto& m : members) m->stop();
}

}  // namespace
}  // namespace dapple
