// Tests for the snapshot services: the paper's clock-based checkpoint and
// the Chandy–Lamport marker snapshot, verified via token conservation.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/snapshot/snapshot.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

/// Coin-passing ring: each node banks coins and ships random batches to its
/// successor; total coins are conserved, so any *consistent* global
/// snapshot must account for exactly the initial total.
struct CoinRing {
  static constexpr std::int64_t kCoinsPerNode = 50;

  explicit CoinRing(std::size_t n, std::uint64_t seed) : net(seed) {
    net.setDefaultLink(
        LinkParams{milliseconds(1), microseconds(800), 0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<Node>());
      nodes[i]->dapplet =
          std::make_unique<Dapplet>(net, "coin" + std::to_string(i));
      nodes[i]->in = &nodes[i]->dapplet->createInbox("coins");
      nodes[i]->out = &nodes[i]->dapplet->createOutbox();
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i]->out->add(nodes[(i + 1) % n]->in->ref());
    }
  }

  struct Node {
    std::unique_ptr<Dapplet> dapplet;
    Inbox* in = nullptr;
    Outbox* out = nullptr;
    std::mutex mutex;
    std::int64_t coins = kCoinsPerNode;

    Value state() {
      std::scoped_lock lock(mutex);
      std::int64_t queued = 0;
      in->forEachQueued([&](const Delivery& del) {
        const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
        if (msg != nullptr && msg->kind() == "coins") {
          queued += msg->get("n").asInt();
        }
      });
      ValueMap map;
      map["coins"] = Value(static_cast<long long>(coins + queued));
      return Value(std::move(map));
    }
  };

  void startTraffic() {
    for (auto& nodePtr : nodes) {
      Node* node = nodePtr.get();
      node->dapplet->spawn([node](std::stop_token stop) {
        Rng rng(node->dapplet->id() * 3 + 1);
        while (!stop.stop_requested()) {
          {
            std::scoped_lock lock(node->mutex);
            if (node->coins > 0) {
              const auto batch = 1 + static_cast<std::int64_t>(rng.below(
                                         static_cast<std::uint64_t>(
                                             node->coins)));
              node->coins -= batch;
              DataMessage msg("coins");
              msg.set("n", Value(static_cast<long long>(batch)));
              node->out->send(msg);
            }
          }
          {
            // Pop + bank atomically w.r.t. state(): a coin popped but not
            // yet banked would otherwise be invisible to a snapshot.
            std::scoped_lock lock(node->mutex);
            while (auto del = node->in->tryReceive()) {
              const auto* msg =
                  dynamic_cast<const DataMessage*>(del->message.get());
              if (msg != nullptr && msg->kind() == "coins") {
                node->coins += msg->get("n").asInt();
              }
            }
          }
          std::this_thread::sleep_for(microseconds(500));
        }
      });
    }
  }

  std::int64_t expectedTotal() const {
    return kCoinsPerNode * static_cast<std::int64_t>(nodes.size());
  }

  static std::int64_t snapshotTotal(const GlobalSnapshot& snap) {
    std::int64_t total = 0;
    for (const auto& [idx, state] : snap.states) {
      total += state.at("coins").asInt();
    }
    for (const auto& [idx, msgs] : snap.channels) {
      for (const Value& m : msgs) {
        auto decoded = decodeMessage(m.at("wire").asString());
        const auto* coins = dynamic_cast<const DataMessage*>(decoded.get());
        if (coins != nullptr && coins->kind() == "coins") {
          total += coins->get("n").asInt();
        }
      }
    }
    return total;
  }

  ~CoinRing() {
    for (auto& node : nodes) node->dapplet->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Node>> nodes;
};

TEST(Checkpoint, QuiescentSystemSnapshotsExactState) {
  CoinRing ring(3, 11);
  std::vector<std::unique_ptr<CheckpointService>> services;
  std::vector<InboxRef> refs;
  for (auto& nodePtr : ring.nodes) {
    CoinRing::Node* node = nodePtr.get();
    services.push_back(std::make_unique<CheckpointService>(
        *node->dapplet, [node] { return node->state(); }));
  }
  for (auto& s : services) refs.push_back(s->ref());
  for (std::size_t i = 0; i < services.size(); ++i) {
    services[i]->attach(refs, i);
  }
  // No traffic at all: every node reports its initial balance, channels
  // are empty.
  GlobalSnapshot snap = services[0]->take(milliseconds(50), seconds(10));
  EXPECT_EQ(snap.states.size(), 3u);
  for (const auto& [idx, state] : snap.states) {
    EXPECT_EQ(state.at("coins").asInt(), CoinRing::kCoinsPerNode);
  }
  for (const auto& [idx, msgs] : snap.channels) {
    EXPECT_TRUE(msgs.empty());
  }
  EXPECT_EQ(CoinRing::snapshotTotal(snap), ring.expectedTotal());
  services.clear();
}

class CheckpointConservation : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(CheckpointConservation, HoldsWhileTrafficFlows) {
  const std::size_t n = GetParam();
  CoinRing ring(n, 100 + n);
  std::vector<std::unique_ptr<CheckpointService>> services;
  std::vector<InboxRef> refs;
  for (auto& nodePtr : ring.nodes) {
    CoinRing::Node* node = nodePtr.get();
    services.push_back(std::make_unique<CheckpointService>(
        *node->dapplet, [node] { return node->state(); }));
  }
  for (auto& s : services) refs.push_back(s->ref());
  for (std::size_t i = 0; i < n; ++i) services[i]->attach(refs, i);

  ring.startTraffic();
  std::this_thread::sleep_for(milliseconds(50));
  GlobalSnapshot snap = services[0]->take(milliseconds(300), seconds(10));
  EXPECT_EQ(CoinRing::snapshotTotal(snap), ring.expectedTotal())
      << "inconsistent cut: coins created or destroyed by the snapshot";
  EXPECT_EQ(snap.states.size(), n);
  services.clear();
}

INSTANTIATE_TEST_SUITE_P(RingSizes, CheckpointConservation,
                         ::testing::Values(2, 3, 5, 8));

TEST(Checkpoint, RepeatedCheckpointsAllConsistent) {
  CoinRing ring(3, 77);
  std::vector<std::unique_ptr<CheckpointService>> services;
  std::vector<InboxRef> refs;
  for (auto& nodePtr : ring.nodes) {
    CoinRing::Node* node = nodePtr.get();
    services.push_back(std::make_unique<CheckpointService>(
        *node->dapplet, [node] { return node->state(); }));
  }
  for (auto& s : services) refs.push_back(s->ref());
  for (std::size_t i = 0; i < 3; ++i) services[i]->attach(refs, i);
  ring.startTraffic();
  std::uint64_t lastT = 0;
  for (int round = 0; round < 3; ++round) {
    GlobalSnapshot snap = services[0]->take(milliseconds(250), seconds(10));
    EXPECT_EQ(CoinRing::snapshotTotal(snap), ring.expectedTotal())
        << "round " << round;
    EXPECT_GT(snap.at, lastT) << "checkpoint times must advance";
    lastT = snap.at;
  }
  EXPECT_GE(services[0]->stats().checkpointsTaken, 3u);
  services.clear();
}

class MarkerConservation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarkerConservation, ChandyLamportCutIsConsistent) {
  const std::size_t n = GetParam();
  CoinRing ring(n, 200 + n);
  std::vector<std::unique_ptr<MarkerRegion>> services;
  std::vector<InboxRef> refs;
  for (auto& nodePtr : ring.nodes) {
    CoinRing::Node* node = nodePtr.get();
    services.push_back(std::make_unique<MarkerRegion>(
        *node->dapplet, [node] { return node->state(); }));
  }
  for (auto& s : services) refs.push_back(s->ref());
  for (std::size_t i = 0; i < n; ++i) {
    // Ring topology: one app outbox, one incoming channel.
    services[i]->attach(refs, i, {ring.nodes[i]->out}, 1);
  }
  ring.startTraffic();
  std::this_thread::sleep_for(milliseconds(50));
  GlobalSnapshot snap = services[0]->take(seconds(10));
  EXPECT_EQ(CoinRing::snapshotTotal(snap), ring.expectedTotal());
  EXPECT_EQ(snap.states.size(), n);
  EXPECT_GE(services[0]->stats().markersSent, 1u);
  services.clear();
}

INSTANTIATE_TEST_SUITE_P(RingSizes, MarkerConservation,
                         ::testing::Values(2, 3, 5));

TEST(Marker, BothAlgorithmsAgreeOnTotals) {
  // Run a marker snapshot, then a clock checkpoint on the same quiesced
  // ring: both must see the same (conserved) total.
  CoinRing ring(3, 303);
  std::vector<std::unique_ptr<MarkerRegion>> markers;
  std::vector<InboxRef> refs;
  for (auto& nodePtr : ring.nodes) {
    CoinRing::Node* node = nodePtr.get();
    markers.push_back(std::make_unique<MarkerRegion>(
        *node->dapplet, [node] { return node->state(); }));
  }
  for (auto& s : markers) refs.push_back(s->ref());
  for (std::size_t i = 0; i < 3; ++i) {
    markers[i]->attach(refs, i, {ring.nodes[i]->out}, 1);
  }
  ring.startTraffic();
  GlobalSnapshot viaMarkers = markers[0]->take(seconds(10));
  EXPECT_EQ(CoinRing::snapshotTotal(viaMarkers), ring.expectedTotal());
  markers.clear();
}

}  // namespace
}  // namespace dapple
