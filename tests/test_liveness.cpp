// Heartbeat failure detection (crash-stop model).  A LivenessMonitor must
// stay quiet while its peers beat, suspect a crashed peer within the
// configured timeout, and un-suspect a peer whose heartbeats resume after a
// partition heals.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "dapple/net/sim.hpp"
#include "dapple/services/liveness/liveness.hpp"
#include "dapple/testkit/virtual_clock.hpp"

namespace dapple {
namespace {

// All timing-sensitive tests run on a VirtualClock: heartbeat/suspect
// schedules play out in virtual time, so "sleep through many suspect
// windows" costs microseconds of wall time.
SimNetwork::Options simOn(testkit::VirtualClock& clock) {
  SimNetwork::Options opts;
  opts.clock = &clock;
  return opts;
}

DappletConfig fastDetect(testkit::VirtualClock& clock) {
  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.deliveryTimeout = milliseconds(500);
  cfg.liveness.heartbeatInterval = milliseconds(20);
  cfg.liveness.suspectTimeout = milliseconds(150);
  return cfg;
}

/// Waits (in virtual time) until `pred()` or `limit` elapses; returns
/// whether pred held.
template <typename Pred>
bool eventually(testkit::VirtualClock& clock, Duration limit, Pred pred) {
  const TimePoint deadline = clock.now() + limit;
  while (clock.now() < deadline) {
    if (pred()) return true;
    clock.sleepFor(milliseconds(5));
  }
  return pred();
}

TEST(Liveness, HealthyPeersAreNeverSuspected) {
  testkit::VirtualClock clock;
  SimNetwork net(900, simOn(clock));
  Dapplet a(net, "a", fastDetect(clock));
  Dapplet b(net, "b", fastDetect(clock));
  LivenessMonitor ma(a);
  LivenessMonitor mb(b);
  ma.watch("peer-b", mb.ref());
  mb.watch("peer-a", ma.ref());

  // Sleep through many suspect windows: both stay trusted.
  clock.sleepFor(milliseconds(600));
  EXPECT_FALSE(ma.suspected("peer-b"));
  EXPECT_FALSE(mb.suspected("peer-a"));
  const auto stats = ma.stats();
  EXPECT_GT(stats.heartbeatsSent, 0u);
  EXPECT_GT(stats.heartbeatsReceived, 0u);
  EXPECT_EQ(stats.suspectEvents, 0u);

  a.stop();
  b.stop();
}

TEST(Liveness, CrashedPeerIsSuspectedWithinTwoTimeouts) {
  testkit::VirtualClock clock;
  SimNetwork net(901, simOn(clock));
  Dapplet a(net, "a", fastDetect(clock));
  auto b = std::make_unique<Dapplet>(net, "b", fastDetect(clock));
  LivenessMonitor ma(a);
  LivenessMonitor mb(*b);
  ma.watch("peer-b", mb.ref());
  mb.watch("peer-a", ma.ref());

  std::atomic<bool> fired{false};
  std::string firedKey;
  ma.onSuspect([&](const std::string& key, const InboxRef&) {
    firedKey = key;
    fired = true;
  });

  // Let the pair exchange a few beats, then crash-stop b.
  ASSERT_TRUE(eventually(clock, seconds(2), [&] {
    return ma.stats().heartbeatsReceived > 0;
  }));
  b->crash();
  const TimePoint crashedAt = clock.now();

  ASSERT_TRUE(eventually(clock, seconds(5), [&] { return fired.load(); }));
  const Duration detectIn = clock.now() - crashedAt;
  EXPECT_LT(detectIn, 2 * ma.suspectTimeout())
      << "detection took "
      << std::chrono::duration_cast<std::chrono::milliseconds>(detectIn)
             .count()
      << "ms";
  EXPECT_EQ(firedKey, "peer-b");
  EXPECT_TRUE(ma.suspected("peer-b"));
  EXPECT_GE(ma.stats().suspectEvents, 1u);

  a.stop();
}

TEST(Liveness, PartitionHealRecoversTheSuspect) {
  testkit::VirtualClock clock;
  SimNetwork net(902, simOn(clock));
  auto cfg = fastDetect(clock);
  cfg.host = 1;
  Dapplet a(net, "a", cfg);
  cfg.host = 2;
  Dapplet b(net, "b", cfg);
  LivenessMonitor ma(a);
  LivenessMonitor mb(b);
  ma.watch("peer-b", mb.ref());
  mb.watch("peer-a", ma.ref());

  std::atomic<int> recoveries{0};
  ma.onAlive([&](const std::string&, const InboxRef&) { ++recoveries; });

  net.setPartition(1, 2, true);
  ASSERT_TRUE(
      eventually(clock, seconds(5), [&] { return ma.suspected("peer-b"); }));

  net.setPartition(1, 2, false);
  // Accuracy is eventual: one delivered heartbeat clears the suspicion.
  ASSERT_TRUE(
      eventually(clock, seconds(5), [&] { return !ma.suspected("peer-b"); }));
  EXPECT_GE(recoveries.load(), 1);
  EXPECT_GE(ma.stats().recoveryEvents, 1u);

  a.stop();
  b.stop();
}

TEST(Liveness, UnwatchSilencesEventsForThatPeer) {
  testkit::VirtualClock clock;
  SimNetwork net(903, simOn(clock));
  Dapplet a(net, "a", fastDetect(clock));
  auto b = std::make_unique<Dapplet>(net, "b", fastDetect(clock));
  LivenessMonitor ma(a);
  LivenessMonitor mb(*b);
  ma.watch("peer-b", mb.ref());
  mb.watch("peer-a", ma.ref());

  std::atomic<bool> fired{false};
  ma.onSuspect([&](const std::string&, const InboxRef&) { fired = true; });

  ma.unwatch("peer-b");
  EXPECT_TRUE(ma.watchedKeys().empty());
  b->crash();
  clock.sleepFor(4 * ma.suspectTimeout());
  EXPECT_FALSE(fired.load());

  a.stop();
}

TEST(Liveness, ConfigInheritsFromDappletAndOverrides) {
  SimNetwork net(904);
  DappletConfig cfg;
  cfg.liveness.heartbeatInterval = milliseconds(35);
  cfg.liveness.suspectTimeout = milliseconds(210);
  Dapplet d(net, "d", cfg);
  Dapplet e(net, "e", cfg);  // one monitor per dapplet: "live.ctl" is unique

  LivenessMonitor inherited(d);
  EXPECT_EQ(inherited.heartbeatInterval(), milliseconds(35));
  EXPECT_EQ(inherited.suspectTimeout(), milliseconds(210));

  LivenessConfig mine;
  mine.heartbeatInterval = milliseconds(10);
  mine.suspectTimeout = milliseconds(80);
  LivenessMonitor overridden(e, mine);
  EXPECT_EQ(overridden.heartbeatInterval(), milliseconds(10));
  EXPECT_EQ(overridden.suspectTimeout(), milliseconds(80));

  d.stop();
  e.stop();
}

// The flat DappletConfig knobs are gone (one deprecation release after the
// nested move); normalized() now only clamps runtime nonsense and folds the
// reactor mode into the reliable layer.
TEST(Liveness, NormalizedClampsRuntimeAndDefaultsHold) {
  SimNetwork net(906);
  DappletConfig cfg;
  cfg.runtime.ownedThreads = 0;  // nonsense: clamped to 1
  Dapplet d(net, "d", cfg);

  EXPECT_EQ(d.config().runtime.ownedThreads, 1u);
  EXPECT_EQ(d.config().runtime.reactor, nullptr);
  EXPECT_FALSE(d.config().reliable.externalTick);
  // Nested liveness defaults survive normalization untouched.
  EXPECT_EQ(d.config().liveness.heartbeatInterval, milliseconds(50));
  EXPECT_EQ(d.config().liveness.suspectTimeout, milliseconds(250));

  LivenessMonitor inherited(d);
  EXPECT_EQ(inherited.heartbeatInterval(), milliseconds(50));
  EXPECT_EQ(inherited.suspectTimeout(), milliseconds(250));
  d.stop();
}

TEST(Liveness, WatchingManyPeersKeysAreIndependent) {
  testkit::VirtualClock clock;
  SimNetwork net(905, simOn(clock));
  Dapplet a(net, "a", fastDetect(clock));
  auto b = std::make_unique<Dapplet>(net, "b", fastDetect(clock));
  Dapplet c(net, "c", fastDetect(clock));
  LivenessMonitor ma(a);
  LivenessMonitor mb(*b);
  LivenessMonitor mc(c);
  // Two independent watches of b (e.g. two sessions) plus one of c.
  ma.watch("s1/b", mb.ref());
  ma.watch("s2/b", mb.ref());
  ma.watch("s1/c", mc.ref());
  mb.watch("peer-a", ma.ref());
  mc.watch("peer-a", ma.ref());
  EXPECT_EQ(ma.watchedKeys().size(), 3u);

  b->crash();
  // Both watches of b trip; c stays trusted.
  ASSERT_TRUE(eventually(clock, seconds(5), [&] {
    return ma.suspected("s1/b") && ma.suspected("s2/b");
  }));
  EXPECT_FALSE(ma.suspected("s1/c"));

  a.stop();
  c.stop();
}

}  // namespace
}  // namespace dapple
