// Tests for the observability layer: metric primitives (counters, gauges,
// log2 histograms), the trace ring, snapshot merge/dump, and the end-to-end
// wiring — a lossy SimNetwork run must show up in Dapplet::metrics() as
// retransmits, and a real session must populate the session.* counters.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/obs/metrics.hpp"
#include "dapple/serial/data_message.hpp"

namespace dapple {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceRing;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(ObsCounter, ExactUnderConcurrentIncrements) {
  MetricsRegistry registry;
  obs::Counter& c = registry.counter("c");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(ObsGauge, RecordMaxIsMonotonicHighWater) {
  obs::Gauge g;
  g.recordMax(5);
  g.recordMax(3);  // lower: ignored
  EXPECT_EQ(g.value(), 5);
  g.recordMax(9);
  EXPECT_EQ(g.value(), 9);
  g.set(2);  // set() is not clamped — it is the "current value" op
  EXPECT_EQ(g.value(), 2);
}

TEST(ObsHistogram, BucketBoundariesAreExactPowersOfTwo) {
  Histogram h;
  // Bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i).
  h.record(0);                     // bucket 0
  h.record(1);                     // bucket 1
  h.record(2);                     // bucket 2 lower edge
  h.record(3);                     // bucket 2 upper edge
  h.record(4);                     // bucket 3 lower edge
  h.record(7);                     // bucket 3 upper edge
  h.record(8);                     // bucket 4
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 7 + 8);
  EXPECT_EQ(s.max, 8u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 2u);
  EXPECT_EQ(s.buckets[4], 1u);
  EXPECT_EQ(HistogramSnapshot::bucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucketUpperBound(3), 7u);
  // Conservative quantile: within one bucket (factor of 2) of the truth.
  EXPECT_LE(s.quantile(0.0), 1u);
  EXPECT_EQ(s.quantile(1.0), 15u);  // max 8 lives in bucket 4, bound 15
}

TEST(ObsHistogram, QuantileAndMeanOnUniformSweep) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // p50 of [1,1000] is ~500 → bucket 9 ([256,512)), upper bound 511.
  EXPECT_EQ(s.quantile(0.5), 511u);
  EXPECT_GE(s.quantile(0.99), 511u);
}

TEST(ObsTrace, RingOverwritesOldestAndKeepsSeq) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    ring.emit("test", "e" + std::to_string(i), "", i);
  }
  EXPECT_EQ(ring.emitted(), 6u);
  EXPECT_EQ(ring.overwritten(), 2u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 2u);  // e0, e1 were overwritten
  EXPECT_EQ(events.front().name, "e2");
  EXPECT_EQ(events.back().seq, 5u);
  EXPECT_EQ(events.back().a, 5);
  ring.clear();
  EXPECT_TRUE(ring.events().empty());
  EXPECT_EQ(ring.emitted(), 6u);  // emitted() keeps counting
}

TEST(ObsRegistry, SameNameSameMetricDifferentKindThrows) {
  MetricsRegistry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.gauge("x"), MetricsError);
  EXPECT_THROW(registry.histogram("x"), MetricsError);
}

TEST(ObsSnapshot, MergeAddsCountersMaxesGaugesAddsHistograms) {
  MetricsSnapshot a;
  a.counters["c"] = 3;
  a.gauges["g"] = 10;
  Histogram ha;
  ha.record(4);
  a.histograms["h"] = ha.snapshot();

  MetricsSnapshot b;
  b.counters["c"] = 5;
  b.gauges["g"] = 7;
  Histogram hb;
  hb.record(4);
  hb.record(100);
  b.histograms["h"] = hb.snapshot();

  a.merge(b);
  EXPECT_EQ(a.counters["c"], 8u);
  EXPECT_EQ(a.gauges["g"], 10);  // max, not sum
  EXPECT_EQ(a.histograms["h"].count, 3u);
  EXPECT_EQ(a.histograms["h"].max, 100u);
  EXPECT_EQ(a.histograms["h"].buckets[3], 2u);  // two 4s

  // Prefixed merge rewrites keys.
  MetricsSnapshot c;
  c.merge(b, "peer.");
  EXPECT_EQ(c.counters.count("peer.c"), 1u);
  EXPECT_EQ(c.counters.count("c"), 0u);
}

TEST(ObsSnapshot, DumpsAreWellFormed) {
  MetricsRegistry registry;
  registry.counter("net.sent").inc(3);
  registry.gauge("queue.depth").set(4);
  registry.histogram("lat_us").record(100);
  const MetricsSnapshot snap = registry.snapshot();
  const std::string text = snap.toText();
  EXPECT_NE(text.find("net.sent"), std::string::npos);
  EXPECT_NE(text.find("queue.depth"), std::string::npos);
  const std::string json = snap.toJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"net.sent\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end wiring
// ---------------------------------------------------------------------------

TEST(ObsWiring, LossyLinkShowsUpAsRetransmitsAndDrops) {
  SimNetwork net(777);
  net.setDefaultLink(
      LinkParams{microseconds(200), microseconds(300), 0.10, 0.0});
  DappletConfig cfg;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(10);
  Dapplet a(net, "a", cfg);
  Dapplet b(net, "b", cfg);
  Inbox& in = b.createInbox("in");
  Outbox& out = a.createOutbox();
  out.add(in.ref());

  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    DataMessage m("n");
    m.set("i", Value(static_cast<long long>(i)));
    out.send(m);
  }
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(in.receiveAs<DataMessage>(seconds(20)).get("i").asInt(), i);
    // FIFO held
  }

  const MetricsSnapshot sender = a.metrics();
  EXPECT_GE(sender.counters.at("reliable.data_sent"),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(sender.counters.at("reliable.retransmits"), 0u)
      << "10% loss must force retransmissions";
  EXPECT_GT(sender.counters.at("net.datagrams_out"), 0u);
  EXPECT_GT(sender.histograms.at("reliable.ack_latency_us").count, 0u);

  const MetricsSnapshot receiver = b.metrics();
  EXPECT_EQ(receiver.counters.at("core.messages_delivered"),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(receiver.gauges.at("core.inbox_queue_hwm"), 0);

  // The fabric's own view: drops happened, and once quiescent the flow
  // conservation invariant holds.
  ASSERT_TRUE(net.awaitQuiescent(seconds(10)));
  const MetricsSnapshot sim = net.metrics();
  EXPECT_GT(sim.counters.at("sim.dropped"), 0u);
  EXPECT_EQ(sim.counters.at("sim.delivered") +
                sim.counters.at("sim.undeliverable"),
            sim.counters.at("sim.sent") - sim.counters.at("sim.dropped") +
                sim.counters.at("sim.duplicated"));

  a.stop();
  b.stop();
}

TEST(ObsWiring, SessionCountersAndPhaseLatencies) {
  SimNetwork net(778);
  Dapplet m0(net, "m0");
  Dapplet m1(net, "m1");
  SessionAgent a0(m0);
  SessionAgent a1(m1);
  for (SessionAgent* agent : {&a0, &a1}) {
    agent->registerApp("noop", [](SessionContext&) {});
  }
  Directory directory;
  directory.put("m0", a0.controlRef());
  directory.put("m1", a1.controlRef());

  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "noop";
  plan.members.push_back(Initiator::member(directory, "m0", {"in"}));
  plan.members.push_back(Initiator::member(directory, "m1", {"in"}));
  plan.edges.push_back({"m0", "out", "m1", "in"});
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  initiator.awaitCompletion(result.sessionId, seconds(10));
  initiator.terminate(result.sessionId);

  // Members: one INVITE accepted each; sessions complete and unlink.
  const MetricsSnapshot member = m0.metrics();
  EXPECT_EQ(member.counters.at("session.invites_accepted"), 1u);
  EXPECT_EQ(member.counters.at("session.invites_rejected"), 0u);
  EXPECT_EQ(member.counters.at("session.sessions_completed"), 1u);

  // Initiator: all three phase histograms saw one round.
  const MetricsSnapshot initiatorSnap = init.metrics();
  EXPECT_EQ(initiatorSnap.histograms.at("session.invite_round_us").count, 1u);
  EXPECT_EQ(initiatorSnap.histograms.at("session.wire_round_us").count, 1u);
  EXPECT_EQ(initiatorSnap.histograms.at("session.start_round_us").count, 1u);

  // The trace narrates the control plane: an established-session event
  // exists on the initiator's ring.
  bool sawEstablished = false;
  for (const auto& ev : init.trace().events()) {
    if (ev.name == "session.established") sawEstablished = true;
  }
  EXPECT_TRUE(sawEstablished);

  m0.stop();
  m1.stop();
  init.stop();
}

TEST(ObsWiring, FanoutHistogramTracksDestinationCount) {
  SimNetwork net(779);
  Dapplet a(net, "a");
  Dapplet b(net, "b");
  Inbox& in1 = b.createInbox("in1");
  Inbox& in2 = b.createInbox("in2");
  Inbox& in3 = b.createInbox("in3");
  Outbox& out = a.createOutbox();
  out.add(in1.ref());
  out.add(in2.ref());
  out.add(in3.ref());
  out.send(DataMessage("x"));
  ASSERT_TRUE(in1.receiveFor(seconds(5)).has_value());
  ASSERT_TRUE(in2.receiveFor(seconds(5)).has_value());
  ASSERT_TRUE(in3.receiveFor(seconds(5)).has_value());

  const HistogramSnapshot fanout =
      a.metrics().histograms.at("core.fanout");
  EXPECT_EQ(fanout.count, 1u);
  EXPECT_EQ(fanout.max, 3u);

  a.stop();
  b.stop();
}

}  // namespace
}  // namespace dapple
