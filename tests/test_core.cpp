// Tests for the core messaging layer: inboxes, outboxes, dapplets, named
// addressing, the Lamport clock criterion, persistent state, and RPC.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "dapple/core/directory.hpp"
#include "dapple/core/rpc.hpp"
#include "dapple/core/state.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"

namespace dapple {
namespace {

DataMessage msg(const std::string& kind, long long n = 0) {
  DataMessage m(kind);
  m.set("n", Value(n));
  return m;
}

struct Pair {
  SimNetwork net{11};
  Dapplet a{net, "a"};
  Dapplet b{net, "b"};

  ~Pair() {
    a.stop();
    b.stop();
  }
};

// ---------------------------------------------------------------------------
// Inbox (the paper's API)
// ---------------------------------------------------------------------------

TEST(Inbox, IsEmptyAndAwaitNonEmpty) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  Outbox& out = p.a.createOutbox();
  out.add(in.ref());

  EXPECT_TRUE(in.isEmpty());
  std::thread sender([&] {
    std::this_thread::sleep_for(milliseconds(20));
    out.send(msg("x"));
  });
  in.awaitNonEmpty();  // paper: "suspends execution until nonempty"
  EXPECT_FALSE(in.isEmpty());
  EXPECT_EQ(in.size(), 1u);
  sender.join();
}

TEST(Inbox, ReceiveRemovesHead) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  Outbox& out = p.a.createOutbox();
  out.add(in.ref());
  out.send(msg("first", 1));
  out.send(msg("second", 2));
  EXPECT_EQ(in.receiveAs<DataMessage>(seconds(2)).get("n").asInt(), 1);
  EXPECT_EQ(in.receiveAs<DataMessage>(seconds(2)).get("n").asInt(), 2);
  EXPECT_TRUE(in.isEmpty());
}

TEST(Inbox, TimedReceiveReportsTimeoutInReturnValue) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  // Canonical surface: "nothing arrived" is a nullopt, not an exception.
  EXPECT_FALSE(in.receiveFor(milliseconds(30)).has_value());
  // Typed receive expects a decode target, so there the missed deadline IS
  // the failure.
  EXPECT_THROW(in.receiveAs<DataMessage>(milliseconds(30)), TimeoutError);
}

// The deprecated throwing overload keeps its contract for one release.
TEST(Inbox, DeprecatedThrowingReceiveStillWorks) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_THROW(in.receive(milliseconds(30)), TimeoutError);
#pragma GCC diagnostic pop
}

TEST(Inbox, TryReceiveNonBlocking) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  EXPECT_FALSE(in.tryReceive().has_value());
}

TEST(Inbox, ReceiveForReturnsNulloptOnTimeout) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  EXPECT_FALSE(in.receiveFor(milliseconds(30)).has_value());

  Outbox& out = p.a.createOutbox();
  out.add(in.ref());
  out.send(msg("x", 7));
  const auto del = in.receiveFor(seconds(2));
  ASSERT_TRUE(del.has_value());
  EXPECT_EQ(del->as<DataMessage>().get("n").asInt(), 7);
}

TEST(Inbox, ReceiveAsExtractsTypedMessage) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  Outbox& out = p.a.createOutbox();
  out.add(in.ref());
  out.send(msg("typed", 5));
  const DataMessage m = in.receiveAs<DataMessage>(seconds(2));
  EXPECT_EQ(m.get("n").asInt(), 5);
}

TEST(Inbox, QueueHighWaterSurvivesDraining) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  Outbox& out = p.a.createOutbox();
  out.add(in.ref());
  out.send(msg("a"));
  out.send(msg("b"));
  out.send(msg("c"));
  // Wait until all three are queued, then drain.
  for (int i = 0; i < 200 && in.size() < 3; ++i) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  while (in.tryReceive()) {
  }
  EXPECT_GE(in.queueHighWater(), 3u);
  EXPECT_TRUE(in.isEmpty());
}

TEST(Inbox, StopWakesBlockedReceiverWithShutdown) {
  SimNetwork net(1);
  Dapplet d(net, "d");
  Inbox& in = d.createInbox("in");
  std::thread stopper([&] {
    std::this_thread::sleep_for(milliseconds(30));
    d.stop();
  });
  EXPECT_THROW(in.receive(), ShutdownError);
  stopper.join();
}

TEST(Inbox, DuplicateNameThrows) {
  SimNetwork net(1);
  Dapplet d(net, "d");
  d.createInbox("same");
  EXPECT_THROW(d.createInbox("same"), AddressError);
  d.stop();
}

TEST(Inbox, DestroyedInboxDropsLaterDeliveries) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  Outbox& out = p.a.createOutbox();
  out.add(in.ref());
  p.b.destroyInbox("in");
  out.send(msg("late"));
  EXPECT_TRUE(p.a.flush(seconds(2)));
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(p.b.stats().messagesDelivered, 0u);
}

// ---------------------------------------------------------------------------
// Outbox (the paper's API)
// ---------------------------------------------------------------------------

TEST(Outbox, AddIsIdempotent) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  Outbox& out = p.a.createOutbox();
  out.add(in.ref());
  out.add(in.ref());  // "if it is not already on the list"
  EXPECT_EQ(out.fanout(), 1u);
  out.send(msg("once"));
  EXPECT_TRUE(in.receiveFor(seconds(2)).has_value());
  EXPECT_FALSE(in.receiveFor(milliseconds(100)).has_value());
}

TEST(Outbox, RemoveUnboundThrows) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  Outbox& out = p.a.createOutbox();
  // paper: delete "otherwise throws an exception"
  EXPECT_THROW(out.remove(in.ref()), AddressError);
  out.add(in.ref());
  out.remove(in.ref());
  EXPECT_EQ(out.fanout(), 0u);
  EXPECT_THROW(out.remove(in.ref()), AddressError);
}

TEST(Outbox, DestinationsReturnsBoundList) {
  Pair p;
  Inbox& in1 = p.b.createInbox("in1");
  Inbox& in2 = p.b.createInbox("in2");
  Outbox& out = p.a.createOutbox();
  out.add(in1.ref());
  out.add(in2.ref());
  const auto dests = out.destinations();
  ASSERT_EQ(dests.size(), 2u);
  EXPECT_EQ(dests[0], in1.ref());
  EXPECT_EQ(dests[1], in2.ref());
}

TEST(Outbox, SendFansOutToAllBoundInboxes) {
  SimNetwork net(2);
  Dapplet a(net, "a");
  Dapplet b(net, "b");
  Dapplet c(net, "c");
  Inbox& inB = b.createInbox("in");
  Inbox& inC = c.createInbox("in");
  Inbox& inA = a.createInbox("self");
  Outbox& out = a.createOutbox();
  out.add(inB.ref());
  out.add(inC.ref());
  out.add(inA.ref());  // self-loop is legal
  out.send(msg("fan", 3));
  EXPECT_EQ(inB.receiveAs<DataMessage>(seconds(2)).get("n").asInt(), 3);
  EXPECT_EQ(inC.receiveAs<DataMessage>(seconds(2)).get("n").asInt(), 3);
  EXPECT_EQ(inA.receiveAs<DataMessage>(seconds(2)).get("n").asInt(), 3);
  a.stop();
  b.stop();
  c.stop();
}

TEST(Outbox, ManyToOneInboxPreservesPerChannelFifo) {
  SimNetwork net(6);
  net.setDefaultLink(
      LinkParams{microseconds(100), microseconds(1500), 0.0, 0.0});
  Dapplet a(net, "a");
  Dapplet b(net, "b");
  Dapplet c(net, "c");
  Inbox& in = c.createInbox("shared");
  Outbox& outA = a.createOutbox();
  Outbox& outB = b.createOutbox();
  outA.add(in.ref());
  outB.add(in.ref());
  for (int i = 0; i < 30; ++i) {
    outA.send(msg("fromA", i));
    outB.send(msg("fromB", i));
  }
  long long lastA = -1;
  long long lastB = -1;
  for (int i = 0; i < 60; ++i) {
    auto got = in.receiveFor(seconds(5));
    ASSERT_TRUE(got.has_value());
    Delivery del = std::move(*got);
    const auto& m = del.as<DataMessage>();
    if (m.kind() == "fromA") {
      EXPECT_EQ(m.get("n").asInt(), lastA + 1);
      lastA = m.get("n").asInt();
    } else {
      EXPECT_EQ(m.get("n").asInt(), lastB + 1);
      lastB = m.get("n").asInt();
    }
  }
  EXPECT_EQ(lastA, 29);
  EXPECT_EQ(lastB, 29);
  a.stop();
  b.stop();
  c.stop();
}

TEST(Outbox, NamedInboxAddressing) {
  Pair p;
  p.b.createInbox("students");
  p.b.createInbox("grades");
  // Bind by (dapplet address, string) with no local id — the paper's
  // "strings as names for inboxes".
  Outbox& out = p.a.createOutbox();
  out.add(InboxRef{p.b.address(), 0, "grades"});
  out.send(msg("toGrades", 1));
  EXPECT_EQ(p.b.inbox("grades").receiveAs<DataMessage>(seconds(2)).kind(),
            "toGrades");
  EXPECT_TRUE(p.b.inbox("students").isEmpty());
}

TEST(Outbox, UnroutableNameIsCountedNotFatal) {
  Pair p;
  Outbox& out = p.a.createOutbox();
  out.add(InboxRef{p.b.address(), 0, "no-such-inbox"});
  out.send(msg("lost"));
  EXPECT_TRUE(p.a.flush(seconds(2)));
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(p.b.stats().unroutable, 1u);
}

// ---------------------------------------------------------------------------
// Dapplet + clock
// ---------------------------------------------------------------------------

TEST(Dapplet, SnapshotCriterionHoldsOnEveryDelivery) {
  // §4.2: "every message that is sent when the sender's clock is T is
  // received when the receiver's clock exceeds T".
  SimNetwork net(33);
  net.setDefaultLink(
      LinkParams{microseconds(50), microseconds(500), 0.0, 0.0});
  Dapplet a(net, "a");
  Dapplet b(net, "b");
  Inbox& inB = b.createInbox("in");
  Inbox& inA = a.createInbox("in");
  Outbox& outA = a.createOutbox();
  Outbox& outB = b.createOutbox();
  outA.add(inB.ref());
  outB.add(inA.ref());
  std::atomic<bool> ok{true};
  std::thread echo([&] {
    for (int i = 0; i < 100; ++i) {
      auto got = inB.receiveFor(seconds(5));
      if (!got) { ok = false; break; }
      Delivery del = std::move(*got);
      if (del.sentAt >= del.receivedAt) ok = false;
      outB.send(msg("echo", del.as<DataMessage>().get("n").asInt()));
    }
  });
  for (int i = 0; i < 100; ++i) {
    outA.send(msg("ping", i));
    auto got = inA.receiveFor(seconds(5));
    ASSERT_TRUE(got.has_value());
    if (got->sentAt >= got->receivedAt) ok = false;
  }
  echo.join();
  EXPECT_TRUE(ok) << "snapshot criterion violated";
  // Clocks are strictly monotonic and advanced past everything seen.
  EXPECT_GE(a.clock().now(), 200u);
  a.stop();
  b.stop();
}

TEST(LamportClock, Primitives) {
  LamportClock clock;
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.tick(), 1u);
  EXPECT_EQ(clock.observe(10), 11u);
  EXPECT_EQ(clock.observe(3), 12u);  // max(11,3)+1
  clock.advanceTo(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.advanceTo(50);  // no regression
  EXPECT_EQ(clock.now(), 100u);
}

TEST(Dapplet, StopIsIdempotentAndStopsWorkers) {
  SimNetwork net(1);
  Dapplet d(net, "d");
  std::atomic<bool> stopped{false};
  d.spawn([&](std::stop_token st) {
    while (!st.stop_requested()) {
      std::this_thread::sleep_for(milliseconds(5));
    }
    stopped = true;
  });
  d.stop();
  d.stop();
  EXPECT_TRUE(stopped);
  EXPECT_THROW(d.createInbox("x"), ShutdownError);
  EXPECT_THROW(d.spawn([](std::stop_token) {}), ShutdownError);
}

TEST(Dapplet, StatsCountTraffic) {
  Pair p;
  Inbox& in = p.b.createInbox("in");
  Outbox& out = p.a.createOutbox();
  out.add(in.ref());
  for (int i = 0; i < 5; ++i) out.send(msg("m", i));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(in.receiveFor(seconds(2)).has_value());
  EXPECT_EQ(p.a.stats().messagesSent, 5u);
  EXPECT_EQ(p.b.stats().messagesDelivered, 5u);
}

// ---------------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------------

TEST(Directory, PutLookupRemove) {
  Directory dir;
  const InboxRef ref{NodeAddress{1, 2}, 3, "ctl"};
  dir.put("mani", ref);
  EXPECT_TRUE(dir.has("mani"));
  EXPECT_EQ(dir.lookup("mani"), ref);
  EXPECT_THROW(dir.lookup("nobody"), AddressError);
  dir.removeEntry("mani");
  EXPECT_FALSE(dir.has("mani"));
  EXPECT_EQ(dir.size(), 0u);
}

TEST(Directory, ValueRoundTrip) {
  Directory dir;
  dir.put("a", InboxRef{NodeAddress{10, 20}, 30, ""});
  dir.put("b", InboxRef{NodeAddress{11, 21}, 0, "named"});
  Directory back = Directory::fromValue(
      Value::fromWire(dir.toValue().toWire()));
  EXPECT_EQ(back.lookup("a"), dir.lookup("a"));
  EXPECT_EQ(back.lookup("b"), dir.lookup("b"));
  EXPECT_EQ(back.names(), dir.names());
}

// ---------------------------------------------------------------------------
// Persistent state + interference
// ---------------------------------------------------------------------------

TEST(StateStore, PersistsAcrossInstances) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dapple_state_test.wire")
          .string();
  std::filesystem::remove(path);
  {
    StateStore store(path);
    store.put("calendar", Value(ValueList{Value(1), Value(5)}));
    store.put("name", Value("mani"));
  }
  {
    StateStore store(path);  // fresh process, same file
    EXPECT_EQ(store.get("name").asString(), "mani");
    EXPECT_EQ(store.get("calendar").asList().size(), 2u);
    store.erase("name");
  }
  {
    StateStore store(path);
    EXPECT_FALSE(store.has("name"));
    EXPECT_TRUE(store.has("calendar"));
  }
  std::filesystem::remove(path);
}

TEST(StateStore, MissingKeyThrows) {
  StateStore store;
  EXPECT_THROW(store.get("nope"), StateError);
  EXPECT_EQ(store.getOr("nope", Value(7)).asInt(), 7);
}

TEST(AccessSets, InterferenceMatrix) {
  const auto sets = [](std::set<std::string> r, std::set<std::string> w) {
    AccessSets s;
    s.reads = std::move(r);
    s.writes = std::move(w);
    return s;
  };
  // read/read never interferes.
  EXPECT_FALSE(sets({"x"}, {}).interferesWith(sets({"x"}, {})));
  // write/write on the same key interferes.
  EXPECT_TRUE(sets({}, {"x"}).interferesWith(sets({}, {"x"})));
  // write vs read (both directions).
  EXPECT_TRUE(sets({}, {"x"}).interferesWith(sets({"x"}, {})));
  EXPECT_TRUE(sets({"x"}, {}).interferesWith(sets({}, {"x"})));
  // disjoint keys never interfere.
  EXPECT_FALSE(sets({"a"}, {"b"}).interferesWith(sets({"c"}, {"d"})));
}

TEST(InterferenceGuard, AdmitAndRelease) {
  InterferenceGuard guard;
  AccessSets s1;
  s1.writes = {"cal"};
  AccessSets s2;
  s2.reads = {"cal"};
  EXPECT_TRUE(guard.tryClaim("s1", s1));
  EXPECT_FALSE(guard.tryClaim("s2", s2));  // reads what s1 writes
  guard.release("s1");
  EXPECT_TRUE(guard.tryClaim("s2", s2));
  AccessSets s3;
  s3.reads = {"cal"};
  EXPECT_TRUE(guard.tryClaim("s3", s3));  // concurrent readers fine
}

TEST(StateView, EnforcesDeclaredSets) {
  StateStore store;
  store.put("a", Value(1));
  store.put("b", Value(2));
  store.put("c", Value(3));
  AccessSets sets;
  sets.reads = {"a"};
  sets.writes = {"b"};
  StateView view(store, sets);
  EXPECT_EQ(view.get("a").asInt(), 1);   // declared read
  EXPECT_EQ(view.get("b").asInt(), 2);   // writes imply read
  EXPECT_THROW(view.get("c"), StateError);
  view.put("b", Value(20));
  EXPECT_THROW(view.put("a", Value(10)), StateError);
  EXPECT_THROW(view.put("c", Value(30)), StateError);
  EXPECT_EQ(store.get("b").asInt(), 20);
  EXPECT_EQ(store.get("a").asInt(), 1);
}

// ---------------------------------------------------------------------------
// RPC
// ---------------------------------------------------------------------------

struct RpcRig {
  SimNetwork net{21};
  Dapplet serverD{net, "server"};
  Dapplet clientD{net, "client"};
  RpcServer server{serverD};

  ~RpcRig() {
    serverD.stop();
    clientD.stop();
  }
};

TEST(Rpc, SynchronousCallReturnsValue) {
  RpcRig rig;
  rig.server.bind("add", [](const Value& args) {
    return Value(args.at("a").asInt() + args.at("b").asInt());
  });
  RpcClient client(rig.clientD, rig.server.ref());
  ValueMap args;
  args["a"] = Value(2);
  args["b"] = Value(40);
  EXPECT_EQ(client.call("add", Value(args)).asInt(), 42);
  EXPECT_EQ(rig.server.stats().callsServed, 1u);
}

TEST(Rpc, ServerExceptionPropagatesToCaller) {
  RpcRig rig;
  rig.server.bind("boom", [](const Value&) -> Value {
    throw Error("kaput");
  });
  RpcClient client(rig.clientD, rig.server.ref());
  try {
    client.call("boom", Value(ValueMap{}));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("kaput"), std::string::npos);
  }
  EXPECT_EQ(rig.server.stats().errors, 1u);
}

TEST(Rpc, UnknownMethodFails) {
  RpcRig rig;
  RpcClient client(rig.clientD, rig.server.ref());
  EXPECT_THROW(client.call("missing", Value(ValueMap{})), Error);
}

TEST(Rpc, CallTimesOutWhenServerGone) {
  SimNetwork net(22);
  Dapplet clientD(net, "client");
  RpcClient client(clientD, InboxRef{NodeAddress{77, 77}, 1, ""});
  EXPECT_THROW(client.call("x", Value(ValueMap{}), milliseconds(150)),
               TimeoutError);
  clientD.stop();
}

TEST(Rpc, NotifyIsFireAndForget) {
  RpcRig rig;
  std::atomic<int> count{0};
  rig.server.bind("bump", [&](const Value&) {
    ++count;
    return Value();
  });
  RpcClient client(rig.clientD, rig.server.ref());
  for (int i = 0; i < 10; ++i) client.notify("bump", Value(ValueMap{}));
  for (int i = 0; i < 100 && count < 10; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(rig.server.stats().notifiesServed, 10u);
}

TEST(Rpc, ConcurrentCallersMultiplexCorrectly) {
  RpcRig rig;
  rig.server.bind("id", [](const Value& args) { return args; });
  RpcClient client(rig.clientD, rig.server.ref());
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        ValueMap args;
        args["v"] = Value(t * 1000 + i);
        const Value back = client.call("id", Value(args));
        if (back.at("v").asInt() != t * 1000 + i) ok = false;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok) << "a caller received someone else's reply";
}

// ---------------------------------------------------------------------------
// Mixed-codec interop: the 0xDB frame preamble *is* the negotiation, so a
// binary-configured dapplet and a text-configured dapplet must complete a
// session without any handshake or shared configuration.
// ---------------------------------------------------------------------------

TEST(Codec, TextAndBinaryPeersInteroperateBothDirections) {
  SimNetwork net(31);
  DappletConfig binaryCfg;
  binaryCfg.wireCodec = WireCodec::kBinary;
  Dapplet textPeer(net, "textpeer");
  Dapplet binPeer(net, "binpeer", binaryCfg);

  Inbox& textIn = textPeer.createInbox("in");
  Inbox& binIn = binPeer.createInbox("in");
  Outbox& textOut = textPeer.createOutbox();
  Outbox& binOut = binPeer.createOutbox();
  textOut.add(binIn.ref());
  binOut.add(textIn.ref());

  // Both directions, including a payload that exercises every scalar shape
  // plus nesting — decode auto-detects per frame, so neither side needs to
  // know what the other emits.
  DataMessage fancy("probe");
  fancy.set("i", Value(-12345));
  fancy.set("d", Value(2.5));
  fancy.set("s", Value(std::string(300, 'x')));
  fancy.set("list", Value(ValueList{Value(1), Value(), Value("two")}));
  textOut.send(fancy);
  binOut.send(fancy);

  const DataMessage fromText = binIn.receiveAs<DataMessage>(seconds(2));
  const DataMessage fromBin = textIn.receiveAs<DataMessage>(seconds(2));
  for (const DataMessage* got : {&fromText, &fromBin}) {
    EXPECT_EQ(got->kind(), "probe");
    EXPECT_EQ(got->get("i").asInt(), -12345);
    EXPECT_EQ(got->get("d").asDouble(), 2.5);
    EXPECT_EQ(got->get("s").asString().size(), 300u);
    EXPECT_EQ(got->get("list").asList().at(2).asString(), "two");
  }

  textPeer.stop();
  binPeer.stop();
}

TEST(Codec, RpcAcrossMixedCodecPeers) {
  SimNetwork net(32);
  DappletConfig binaryCfg;
  binaryCfg.wireCodec = WireCodec::kBinary;
  Dapplet serverD(net, "server", binaryCfg);  // binary server,
  Dapplet clientD(net, "client");             // text client
  RpcServer server(serverD);
  server.bind("add", [](const Value& args) {
    return Value(args.at("a").asInt() + args.at("b").asInt());
  });
  RpcClient client(clientD, server.ref());
  ValueMap args;
  args["a"] = Value(20);
  args["b"] = Value(22);
  EXPECT_EQ(client.call("add", Value(args)).asInt(), 42);
  serverD.stop();
  clientD.stop();
}

/// The paper: "the address of the inbox serves as a global pointer to an
/// object" — addresses must be communicable and usable by third parties.
TEST(Rpc, RefTravelsThroughMessages) {
  RpcRig rig;
  rig.server.bind("whoami", [](const Value&) { return Value("object-p"); });
  const Value wireRef =
      Value::fromWire(inboxRefToValue(rig.server.ref()).toWire());
  RpcClient client(rig.clientD, inboxRefFromValue(wireRef));
  EXPECT_EQ(client.call("whoami", Value(ValueMap{})).asString(), "object-p");
}

}  // namespace
}  // namespace dapple
