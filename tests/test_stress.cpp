// Property/stress tests at the session layer: randomized topologies, many
// concurrent sessions over shared members, repeated session churn on
// long-lived dapplets, and snapshot persistence.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <set>

#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/testkit/seed.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/snapshot/snapshot.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

/// Random-DAG topology property: generate a random acyclic wiring, run a
/// "flood" role where every member sends one token on each out-edge and
/// expects one on each in-edge; the session must complete with every
/// member reporting exactly its in-degree.
class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopology, FloodMatchesInDegree) {
  // DAPPLE_TEST_SEED shifts the whole checked-in sweep to a fresh region
  // of seed space without recompiling.
  const std::uint64_t seed = testkit::testSeed(0) + GetParam();
  DAPPLE_SEED_TRACE(seed);
  Rng rng(seed);
  const std::size_t n = 3 + rng.below(5);  // 3..7 members

  SimNetwork net(seed);
  net.setDefaultLink(
      LinkParams{microseconds(200), microseconds(500), 0.0, 0.0});

  std::vector<std::string> names;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;

  // Edges i -> j for i < j (acyclic); each with probability 0.6.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::vector<int> inDegree(n, 0);
  std::vector<int> outDegree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.chance(0.6)) {
        edges.emplace_back(i, j);
        ++outDegree[i];
        ++inDegree[j];
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    names.push_back("r" + std::to_string(i));
    dapplets.push_back(std::make_unique<Dapplet>(net, names.back()));
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back()));
    agents.back()->registerApp("flood", [](SessionContext& ctx) {
      const auto expect = ctx.params().at("in").asInt();
      if (ctx.hasOutbox("out")) {
        DataMessage token("token");
        token.set("from", Value(ctx.self()));
        ctx.outbox("out").send(token);
      }
      std::int64_t got = 0;
      std::set<std::string> senders;
      while (got < expect) {
        senders.insert(ctx.inbox("in")
                           .receiveAs<DataMessage>(seconds(20))
                           .get("from")
                           .asString());
        ++got;
      }
      ValueMap result;
      result["got"] = Value(static_cast<long long>(got));
      result["distinct"] = Value(static_cast<long long>(senders.size()));
      ctx.setResult(Value(std::move(result)));
    });
    directory.put(names.back(), agents.back()->controlRef());
  }

  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "flood";
  plan.phaseTimeout = seconds(20);
  for (std::size_t i = 0; i < n; ++i) {
    ValueMap params;
    params["in"] = Value(static_cast<long long>(inDegree[i]));
    plan.members.push_back(Initiator::member(
        directory, names[i], {"in"}, Value(std::move(params))));
  }
  for (const auto& [i, j] : edges) {
    plan.edges.push_back({names[i], "out", names[j], "in"});
  }
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok) << "seed " << seed;
  auto done = initiator.awaitCompletion(result.sessionId, seconds(60));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(done.at(names[i]).at("got").asInt(), inDegree[i])
        << "seed " << seed << " member " << i;
    // Fan-out copies are one per edge: distinct senders == in-degree here
    // because each pair has at most one edge.
    EXPECT_EQ(done.at(names[i]).at("distinct").asInt(), inDegree[i]);
  }
  initiator.terminate(result.sessionId);
  agents.clear();
  init.stop();
  for (auto& d : dapplets) d->stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

TEST(Stress, ManyConcurrentSessionsOverSharedMembers) {
  // 6 members, 8 concurrent sessions with disjoint state keys: all must
  // establish and complete, and the members must end fully unlinked.
  const std::uint64_t seed = testkit::testSeed(9000);
  DAPPLE_SEED_TRACE(seed);
  SimNetwork net(seed);
  constexpr std::size_t kMembers = 6;
  constexpr int kSessions = 8;

  std::vector<std::string> names;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  std::atomic<int> rolesRun{0};
  for (std::size_t i = 0; i < kMembers; ++i) {
    names.push_back("s" + std::to_string(i));
    dapplets.push_back(std::make_unique<Dapplet>(net, names.back()));
    stores.push_back(std::make_unique<StateStore>());
    SessionAgent::Config cfg;
    cfg.store = stores.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), cfg));
    agents.back()->registerApp("mark", [&rolesRun](SessionContext& ctx) {
      ctx.state().put(ctx.params().at("key").asString(),
                      Value(ctx.sessionId()));
      ++rolesRun;
    });
    directory.put(names.back(), agents.back()->controlRef());
  }
  Dapplet init(net, "init");
  Initiator initiator(init);

  std::vector<std::string> sessionIds;
  Rng rng(1);
  for (int s = 0; s < kSessions; ++s) {
    Initiator::Plan plan;
    plan.app = "mark";
    plan.phaseTimeout = seconds(20);
    // Two random members per session; unique state key -> no interference.
    std::set<std::size_t> chosen;
    while (chosen.size() < 2) chosen.insert(rng.below(kMembers));
    for (std::size_t m : chosen) {
      ValueMap params;
      params["key"] = Value("slot." + std::to_string(s));
      auto member = Initiator::member(directory, names[m], {},
                                      Value(std::move(params)));
      member.writeKeys = {"slot." + std::to_string(s)};
      plan.members.push_back(member);
    }
    auto result = initiator.establish(plan);
    ASSERT_TRUE(result.ok) << "session " << s;
    sessionIds.push_back(result.sessionId);
  }
  for (const auto& id : sessionIds) {
    initiator.awaitCompletion(id, seconds(30));
    initiator.terminate(id);
  }
  EXPECT_EQ(rolesRun.load(), kSessions * 2);
  for (int i = 0; i < 200; ++i) {
    bool clear = true;
    for (auto& agent : agents) clear = clear && agent->activeSessions().empty();
    if (clear) break;
    std::this_thread::sleep_for(milliseconds(10));
  }
  for (auto& agent : agents) {
    EXPECT_TRUE(agent->activeSessions().empty());
  }
  agents.clear();
  init.stop();
  for (auto& d : dapplets) d->stop();
}

TEST(Stress, SessionChurnOnLongLivedDapplets) {
  // The paper's model: long-lived dapplets joining many short sessions.
  const std::uint64_t seed = testkit::testSeed(9100);
  DAPPLE_SEED_TRACE(seed);
  SimNetwork net(seed);
  Dapplet member(net, "veteran");
  SessionAgent agent(member);
  std::atomic<int> runs{0};
  agent.registerApp("tick", [&runs](SessionContext&) { ++runs; });
  Directory directory;
  directory.put("veteran", agent.controlRef());
  Dapplet init(net, "init");
  Initiator initiator(init);

  constexpr int kRounds = 25;
  for (int r = 0; r < kRounds; ++r) {
    Initiator::Plan plan;
    plan.app = "tick";
    plan.phaseTimeout = seconds(10);
    plan.members.push_back(
        Initiator::member(directory, "veteran", {"in"}));
    auto result = initiator.establish(plan);
    ASSERT_TRUE(result.ok) << "round " << r;
    initiator.awaitCompletion(result.sessionId, seconds(10));
    initiator.terminate(result.sessionId);
  }
  EXPECT_EQ(runs.load(), kRounds);
  init.stop();
  member.stop();
}

TEST(SnapshotPersistence, SaveLoadRoundTrip) {
  GlobalSnapshot snap;
  snap.at = 12345;
  ValueMap state0;
  state0["coins"] = Value(17);
  snap.states[0] = Value(std::move(state0));
  snap.states[2] = Value("opaque");
  ValueMap msg;
  msg["wire"] = Value("s5:hello");
  snap.channels[1].push_back(Value(std::move(msg)));

  const std::string path =
      (std::filesystem::temp_directory_path() / "dapple_snapshot_test.wire")
          .string();
  snap.saveTo(path);
  const GlobalSnapshot back = GlobalSnapshot::loadFrom(path);
  EXPECT_EQ(back.at, snap.at);
  EXPECT_EQ(back.states.size(), 2u);
  EXPECT_EQ(back.states.at(0).at("coins").asInt(), 17);
  EXPECT_EQ(back.states.at(2).asString(), "opaque");
  ASSERT_EQ(back.channels.at(1).size(), 1u);
  EXPECT_EQ(back.channels.at(1)[0].at("wire").asString(), "s5:hello");
  std::filesystem::remove(path);
}

TEST(SnapshotPersistence, LoadMissingFileThrows) {
  EXPECT_THROW(GlobalSnapshot::loadFrom("/no/such/dir/snap.wire"),
               StateError);
}

}  // namespace
}  // namespace dapple
