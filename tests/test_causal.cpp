// Tests for causally-ordered multicast: causal delivery (replies never
// precede their causes), per-publisher FIFO, liveness, and the contrast
// with total order (concurrent messages may be seen in different orders).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>

#include "dapple/net/sim.hpp"
#include "dapple/testkit/seed.hpp"
#include "dapple/services/clocks/causal_order.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

struct CausalRig {
  explicit CausalRig(std::size_t n, std::uint64_t seed = 91,
                     LinkParams link = LinkParams{microseconds(200),
                                                  microseconds(600), 0.0,
                                                  0.0})
      : net(seed) {
    net.setDefaultLink(link);
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "c" + std::to_string(i)));
      groups.push_back(
          std::make_unique<CausalGroup>(*dapplets.back(), "grp"));
    }
    std::vector<InboxRef> refs;
    for (auto& g : groups) refs.push_back(g->ref());
    for (std::size_t i = 0; i < n; ++i) groups[i]->attach(refs, i);
  }

  ~CausalRig() {
    groups.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<CausalGroup>> groups;
};

TEST(CausalOrder, SelfDeliveryInPublishOrder) {
  CausalRig rig(1);
  for (int i = 0; i < 10; ++i) rig.groups[0]->publish(Value(i));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rig.groups[0]->take(seconds(5)).payload.asInt(), i);
  }
}

TEST(CausalOrder, ReplyNeverBeforeItsCause) {
  // Member 0 publishes a question; member 1 delivers it and publishes the
  // answer.  Member 2 (and everyone else) must deliver question before
  // answer, however the channels race.
  const std::uint64_t base = testkit::testSeed(0);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DAPPLE_SEED_TRACE(base + seed * 13);
    CausalRig rig(3, base + seed * 13,
                  LinkParams{microseconds(100), milliseconds(3), 0.0, 0.0});
    rig.groups[0]->publish(Value("question"));
    // Member 1 answers only after delivering the question.
    std::thread responder([&] {
      auto q = rig.groups[1]->take(seconds(10));
      EXPECT_EQ(q.payload.asString(), "question");
      rig.groups[1]->publish(Value("answer"));
    });
    const auto first = rig.groups[2]->take(seconds(10));
    const auto second = rig.groups[2]->take(seconds(10));
    EXPECT_EQ(first.payload.asString(), "question")
        << "seed " << seed << ": causal order violated";
    EXPECT_EQ(second.payload.asString(), "answer");
    responder.join();
  }
}

TEST(CausalOrder, LongCausalChainPreserved) {
  // Token passes 0 -> 1 -> 2 -> 0 -> ... each hop publishing after
  // delivering; every member must see the chain in order.
  constexpr int kHops = 12;
  CausalRig rig(3, 17,
                LinkParams{microseconds(100), milliseconds(2), 0.0, 0.0});
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      std::int64_t expect = 0;
      while (expect < kHops) {
        const auto item = rig.groups[i]->take(seconds(20));
        ASSERT_EQ(item.payload.asInt(), expect) << "at member " << i;
        if (static_cast<std::size_t>((expect + 1) % 3) == i &&
            expect + 1 < kHops) {
          rig.groups[i]->publish(Value(expect + 1));
        }
        ++expect;
      }
    });
  }
  rig.groups[0]->publish(Value(0));
  // Hop 1 is published by member 1, etc.; kicked off above.
  for (auto& t : threads) t.join();
}

TEST(CausalOrder, PerPublisherFifoAlways) {
  CausalRig rig(3, 29,
                LinkParams{microseconds(100), milliseconds(4), 0.0, 0.0});
  for (std::size_t i = 0; i < 3; ++i) {
    for (int k = 0; k < 10; ++k) {
      rig.groups[i]->publish(Value(static_cast<long long>(i * 100 + k)));
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    std::map<std::size_t, std::int64_t> last;
    for (int k = 0; k < 30; ++k) {
      const auto item = rig.groups[i]->take(seconds(20));
      const auto it = last.find(item.from);
      if (it != last.end()) {
        EXPECT_GT(item.payload.asInt(), it->second)
            << "publisher FIFO violated at member " << i;
      }
      last[item.from] = item.payload.asInt();
    }
  }
}

TEST(CausalOrder, HeldBackCountsArrivalsAwaitingCauses) {
  CausalRig rig(2, 31,
                LinkParams{microseconds(100), milliseconds(5), 0.0, 0.0});
  // A burst of chained self-messages from member 0: under jitter some
  // arrive at member 1 out of order and must be held back.
  for (int k = 0; k < 20; ++k) rig.groups[0]->publish(Value(k));
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(rig.groups[1]->take(seconds(20)).payload.asInt(), k);
  }
  // Not asserting > 0: jitter may happen to keep order; just consistency.
  EXPECT_EQ(rig.groups[1]->stats().delivered, 20u);
}

TEST(CausalOrder, TakeTimesOutOnIdleGroup) {
  CausalRig rig(2);
  EXPECT_THROW(rig.groups[0]->take(milliseconds(100)), TimeoutError);
  EXPECT_FALSE(rig.groups[1]->tryTake().has_value());
}

class CausalLiveness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CausalLiveness, EveryMessageEventuallyDeliveredEverywhere) {
  const std::size_t n = GetParam();
  CausalRig rig(n, 37 + n);
  constexpr int kPerMember = 8;
  std::vector<std::thread> publishers;
  for (std::size_t i = 0; i < n; ++i) {
    publishers.emplace_back([&, i] {
      Rng rng(i + 3);
      for (int k = 0; k < kPerMember; ++k) {
        rig.groups[i]->publish(Value(static_cast<long long>(i * 100 + k)));
        std::this_thread::sleep_for(microseconds(rng.below(300)));
      }
    });
  }
  for (auto& t : publishers) t.join();
  const int total = static_cast<int>(n) * kPerMember;
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::int64_t> seen;
    for (int k = 0; k < total; ++k) {
      seen.insert(rig.groups[i]->take(seconds(20)).payload.asInt());
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(total));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CausalLiveness,
                         ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace dapple
