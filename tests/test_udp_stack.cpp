// Full-stack integration over REAL UDP sockets (the paper's transport):
// sessions, the calendar application, RPC, and ordered delivery all running
// on 127.0.0.1 datagrams instead of the simulator.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dapple/apps/calendar.hpp"
#include "dapple/core/rpc.hpp"
#include "dapple/net/udp.hpp"
#include "dapple/serial/data_message.hpp"

namespace dapple {
namespace {

using apps::CalendarBook;

TEST(UdpStack, OrderedChannelsOverRealSockets) {
  UdpNetwork net;
  Dapplet a(net, "a");
  Dapplet b(net, "b");
  Inbox& in = b.createInbox("in");
  Outbox& out = a.createOutbox();
  out.add(in.ref());
  for (int i = 0; i < 200; ++i) {
    DataMessage m("seq");
    m.set("n", Value(i));
    out.send(m);
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(in.receiveAs<DataMessage>(seconds(10)).get("n").asInt(), i);
  }
  a.stop();
  b.stop();
}

TEST(UdpStack, OversizePayloadFailsSynchronously) {
  // A payload UDP can never carry (>65507 bytes framed) must fail the
  // send() call itself with DeliveryError — not be silently counted as loss
  // and surface much later as a stream delivery timeout.
  UdpNetwork net;
  Dapplet a(net, "a");
  Dapplet b(net, "b");
  Inbox& in = b.createInbox("in");
  Outbox& out = a.createOutbox();
  out.add(in.ref());
  DataMessage big("big");
  big.set("blob", Value(std::string(70 * 1024, 'x')));
  EXPECT_THROW(out.send(big), DeliveryError);
  // The rejected send queued nothing and did not fail the stream: a sane
  // payload afterwards still flows.
  DataMessage ok("ok");
  ok.set("n", Value(7));
  out.send(ok);
  EXPECT_EQ(in.receiveAs<DataMessage>(seconds(10)).get("n").asInt(), 7);
  a.stop();
  b.stop();
}

TEST(UdpStack, RpcOverRealSockets) {
  UdpNetwork net;
  Dapplet serverD(net, "server");
  Dapplet clientD(net, "client");
  RpcServer server(serverD);
  server.bind("square", [](const Value& args) {
    return Value(args.at("x").asInt() * args.at("x").asInt());
  });
  RpcClient client(clientD, server.ref());
  ValueMap args;
  args["x"] = Value(12);
  EXPECT_EQ(client.call("square", Value(args)).asInt(), 144);
  serverD.stop();
  clientD.stop();
}

TEST(UdpStack, CalendarSessionOverRealSockets) {
  UdpNetwork net;
  Dapplet director(net, "director");
  const std::vector<std::string> names = {"u0", "u1", "u2"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  Rng rng(321);
  for (const auto& name : names) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name));
    stores.push_back(std::make_unique<StateStore>());
    CalendarBook::populate(*stores.back(), rng, 30, 0.4);
    SessionAgent::Config cfg;
    cfg.store = stores.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), cfg));
    apps::registerCalendarApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }
  SessionAgent directorAgent(director);
  apps::registerCalendarApp(directorAgent);
  directory.put("director", directorAgent.controlRef());

  Initiator initiator(director);
  auto plan =
      apps::flatCalendarPlan(directory, "director", names, 0, 15, 3);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto outcome = apps::parseOutcome(
      initiator.awaitCompletion(result.sessionId, seconds(30))
          .at("director"));
  ASSERT_TRUE(outcome.scheduled);
  for (auto& store : stores) {
    EXPECT_FALSE(CalendarBook::isFree(*store, outcome.day));
  }
  initiator.terminate(result.sessionId);
  agents.clear();
  director.stop();
  for (auto& d : dapplets) d->stop();
}

}  // namespace
}  // namespace dapple
