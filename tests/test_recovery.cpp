// Crash-recovery persistence (DESIGN.md §12): WAL + checkpoint round-trips,
// torn-tail handling, the StateStore corrupt-file fallback, coordinated
// checkpoints, and the full kill -> restart -> REJOIN path, all on a
// VirtualClock so seconds of recovery time cost milliseconds of wall time.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/liveness/liveness.hpp"
#include "dapple/services/recovery/recovery.hpp"
#include "dapple/services/snapshot/snapshot.hpp"
#include "dapple/services/tokens/token_manager.hpp"
#include "dapple/testkit/seed.hpp"
#include "dapple/testkit/virtual_clock.hpp"

namespace dapple {
namespace {

SimNetwork::Options simOn(testkit::VirtualClock& clock) {
  SimNetwork::Options opts;
  opts.clock = &clock;
  return opts;
}

DappletConfig recoveryCfg(testkit::VirtualClock& clock, std::uint32_t host) {
  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.maxRto = milliseconds(120);
  cfg.reliable.deliveryTimeout = seconds(10);
  cfg.host = host;
  return cfg;
}

/// Fresh per-test scratch directory (tests may use wall-clock identifiers;
/// only the fuzz scenarios must stay deterministic).
std::string tempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const auto path = std::filesystem::temp_directory_path() /
                    ("dapple_recovery_" + std::to_string(::getpid()) + "_" +
                     tag + "_" + std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path.string();
}

void appendRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

// ---------------------------------------------------------------------------
// WAL unit behaviour
// ---------------------------------------------------------------------------

TEST(Wal, RoundTripPreservesOrderAndSequence) {
  const std::string path = tempDir("wal") + "/w.wal";
  {
    recovery::WriteAheadLog wal(path);
    EXPECT_TRUE(wal.replayAll().records.empty());
    const Value v1(static_cast<std::int64_t>(42));
    const Value v2(std::string("hello world"));
    EXPECT_EQ(1u, wal.append(recovery::WalRecord::kPut, "alpha", &v1, 7));
    EXPECT_EQ(2u, wal.append(recovery::WalRecord::kPut, "beta", &v2, 8));
    EXPECT_EQ(3u, wal.append(recovery::WalRecord::kErase, "alpha", nullptr, 9));
  }
  recovery::WriteAheadLog wal(path);
  auto replay = wal.replayAll();
  ASSERT_EQ(3u, replay.records.size());
  EXPECT_FALSE(replay.tornTail);
  EXPECT_EQ(recovery::WalRecord::kPut, replay.records[0].kind);
  EXPECT_EQ("alpha", replay.records[0].key);
  EXPECT_EQ(42, replay.records[0].value.asInt());
  EXPECT_EQ(7u, replay.records[0].lamport);
  EXPECT_EQ("hello world", replay.records[1].value.asString());
  EXPECT_EQ(recovery::WalRecord::kErase, replay.records[2].kind);
  EXPECT_TRUE(replay.records[2].value.isNull());
  // The sequence continues where the log left off.
  const Value v3(static_cast<std::int64_t>(1));
  EXPECT_EQ(4u, wal.append(recovery::WalRecord::kPut, "gamma", &v3, 10));
}

TEST(Wal, TornTailIsTruncatedAndLogStaysAppendable) {
  const std::string path = tempDir("torn") + "/w.wal";
  {
    recovery::WriteAheadLog wal(path);
    wal.replayAll();
    const Value v(static_cast<std::int64_t>(1));
    wal.append(recovery::WalRecord::kPut, "a", &v, 1);
    wal.append(recovery::WalRecord::kPut, "b", &v, 2);
  }
  // A crash mid-append: frame header promises more bytes than exist.
  appendRaw(path, "u999 u12345 half-a-fra");
  {
    recovery::WriteAheadLog wal(path);
    auto replay = wal.replayAll();
    ASSERT_EQ(2u, replay.records.size());
    EXPECT_TRUE(replay.tornTail);
    EXPECT_GT(replay.truncatedBytes, 0u);
    const Value v(static_cast<std::int64_t>(3));
    wal.append(recovery::WalRecord::kPut, "c", &v, 3);
  }
  // The truncation left a clean log: all three records replay intact.
  recovery::WriteAheadLog wal(path);
  auto replay = wal.replayAll();
  ASSERT_EQ(3u, replay.records.size());
  EXPECT_FALSE(replay.tornTail);
  EXPECT_EQ("c", replay.records[2].key);
}

// A process upgrade that flips the codec must be able to reopen a journal
// written under the old codec: replay auto-detects each frame, appends use
// the new codec, and a log mixing both formats replays in full order.
TEST(Wal, CodecSwitchReplaysOldTextJournalAndMixesFrames) {
  const std::string path = tempDir("codec") + "/w.wal";
  const Value v1(static_cast<std::int64_t>(1));
  const Value v2(std::string("two"));
  {
    recovery::WriteAheadLog wal(path);  // default: text frames
    wal.replayAll();
    wal.append(recovery::WalRecord::kPut, "a", &v1, 1);
    wal.append(recovery::WalRecord::kPut, "b", &v2, 2);
  }
  {
    // Reopen binary-configured over the pre-existing text journal.
    recovery::WriteAheadLog wal(
        path, recovery::WriteAheadLog::Options(true, WireCodec::kBinary));
    auto replay = wal.replayAll();
    ASSERT_EQ(2u, replay.records.size());
    EXPECT_FALSE(replay.tornTail);
    EXPECT_EQ("b", replay.records[1].key);
    EXPECT_EQ("two", replay.records[1].value.asString());
    wal.append(recovery::WalRecord::kPut, "c", &v1, 3);  // binary frame
  }
  // The mixed text+binary log replays in order under either configuration.
  for (const WireCodec codec : {WireCodec::kText, WireCodec::kBinary}) {
    recovery::WriteAheadLog wal(path,
                                recovery::WriteAheadLog::Options(true, codec));
    auto replay = wal.replayAll();
    ASSERT_EQ(3u, replay.records.size());
    EXPECT_FALSE(replay.tornTail);
    EXPECT_EQ("a", replay.records[0].key);
    EXPECT_EQ("c", replay.records[2].key);
    EXPECT_EQ(3u, replay.records[2].seq);
  }
}

TEST(Wal, BinaryTornTailIsTruncatedAndLogStaysAppendable) {
  const std::string path = tempDir("btorn") + "/w.wal";
  const recovery::WriteAheadLog::Options binOpts(true, WireCodec::kBinary);
  const Value v(static_cast<std::int64_t>(1));
  {
    recovery::WriteAheadLog wal(path, binOpts);
    wal.replayAll();
    wal.append(recovery::WalRecord::kPut, "a", &v, 1);
  }
  // A crash mid-append: binary preamble + varint length promising more
  // bytes than the file holds.
  appendRaw(path, std::string(1, kBinaryPreamble) + "\x40partial");
  {
    recovery::WriteAheadLog wal(path, binOpts);
    auto replay = wal.replayAll();
    ASSERT_EQ(1u, replay.records.size());
    EXPECT_TRUE(replay.tornTail);
    wal.append(recovery::WalRecord::kPut, "b", &v, 2);
  }
  recovery::WriteAheadLog wal(path, binOpts);
  auto replay = wal.replayAll();
  ASSERT_EQ(2u, replay.records.size());
  EXPECT_FALSE(replay.tornTail);
  EXPECT_EQ("b", replay.records[1].key);
}

// ---------------------------------------------------------------------------
// StateStore durability (atomic save + corrupt-file fallback)
// ---------------------------------------------------------------------------

TEST(StateStoreDurability, AtomicSaveRoundTripsAndCorruptFileDegrades) {
  const std::string path = tempDir("store") + "/state.db";
  {
    StateStore store(path);
    store.put("k", Value(static_cast<std::int64_t>(5)));
    store.put("s", Value(std::string("v")));
  }
  {
    StateStore store(path);
    EXPECT_EQ(5, store.get("k").asInt());
    EXPECT_EQ("v", store.get("s").asString());
  }
  // Corrupt the image (as a torn write from a pre-atomic-save version
  // would): the store must degrade to empty with a warning, not abort.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "m3 this is not wire text !!";
  }
  std::vector<std::string> warnings;
  StateStore store(path,
                   [&](const std::string& w) { warnings.push_back(w); });
  EXPECT_TRUE(store.keys().empty());
  ASSERT_EQ(1u, warnings.size());
  EXPECT_NE(std::string::npos, warnings[0].find("corrupt"));
  // The bad image is preserved for post-mortem, not silently destroyed.
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  // The degraded store keeps persisting.
  store.put("fresh", Value(static_cast<std::int64_t>(1)));
  StateStore reloaded(path);
  EXPECT_EQ(1, reloaded.get("fresh").asInt());
}

// ---------------------------------------------------------------------------
// DurableState: checkpoint + WAL tail recovery
// ---------------------------------------------------------------------------

TEST(DurableState, ReopenReplaysWalOntoCheckpoint) {
  const std::uint64_t seed = testkit::testSeed(910);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  const std::string dir = tempDir("durable");

  {
    Dapplet d(net, "p1", recoveryCfg(clock, 1));
    recovery::DurableState ds(d, dir);
    EXPECT_FALSE(ds.info().recovered);
    EXPECT_EQ(1u, ds.incarnation());
    ds.store().put("a", Value(static_cast<std::int64_t>(1)));
    ds.store().put("b", Value(std::string("x")));
    ds.store().put("tmp", Value(static_cast<std::int64_t>(3)));
    ds.store().erase("tmp");
    EXPECT_EQ(4u, ds.stats().walAppends);
    d.stop();
  }
  std::uint64_t checkpointAt = 0;
  {
    Dapplet d(net, "p2", recoveryCfg(clock, 2));
    recovery::DurableState ds(d, dir);
    EXPECT_TRUE(ds.info().recovered);
    EXPECT_EQ(2u, ds.incarnation());
    EXPECT_EQ(4u, ds.info().replayedRecords);
    EXPECT_FALSE(ds.info().tornTail);
    EXPECT_EQ(1, ds.store().get("a").asInt());
    EXPECT_EQ("x", ds.store().get("b").asString());
    EXPECT_FALSE(ds.store().has("tmp"));
    // Compact, then journal one more mutation on top of the image.
    ds.checkpoint();
    EXPECT_EQ(1u, ds.stats().checkpoints);
    EXPECT_EQ(0u, ds.stats().walBytes);
    ds.store().put("d", Value(static_cast<std::int64_t>(2)));
    d.stop();
  }
  {
    Dapplet d(net, "p3", recoveryCfg(clock, 3));
    recovery::DurableState ds(d, dir);
    EXPECT_EQ(3u, ds.incarnation());
    EXPECT_GT(ds.info().checkpointAt, 0u);
    checkpointAt = ds.info().checkpointAt;
    EXPECT_EQ(1u, ds.info().replayedRecords);  // just the post-compact put
    EXPECT_EQ(1, ds.store().get("a").asInt());
    EXPECT_EQ(2, ds.store().get("d").asInt());
    // A restarted process must not reissue Lamport times it already used.
    EXPECT_GE(d.clock().now(), checkpointAt);
    d.stop();
  }
}

// Full-stack codec upgrade: a restart that flips `wireCodec` to binary must
// replay the incarnation-1 text journal, journal new mutations in binary,
// and a third (text-again) incarnation must replay the mixed log + the
// binary checkpoint image.
TEST(DurableState, CodecUpgradeAcrossIncarnations) {
  const std::uint64_t seed = testkit::testSeed(915);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  const std::string dir = tempDir("codecup");

  {
    Dapplet d(net, "p1", recoveryCfg(clock, 1));  // text (default)
    recovery::DurableState ds(d, dir);
    ds.store().put("a", Value(static_cast<std::int64_t>(1)));
    d.stop();
  }
  {
    DappletConfig cfg = recoveryCfg(clock, 2);
    cfg.wireCodec = WireCodec::kBinary;
    Dapplet d(net, "p2", cfg);
    recovery::DurableState ds(d, dir);
    EXPECT_TRUE(ds.info().recovered);
    EXPECT_FALSE(ds.info().tornTail);
    EXPECT_EQ(1, ds.store().get("a").asInt());
    ds.store().put("b", Value(std::string("bin")));  // binary WAL frame
    ds.checkpoint();                                 // binary checkpoint image
    ds.store().put("c", Value(static_cast<std::int64_t>(3)));
    d.stop();
  }
  {
    Dapplet d(net, "p3", recoveryCfg(clock, 3));  // back to text
    recovery::DurableState ds(d, dir);
    EXPECT_TRUE(ds.info().recovered);
    EXPECT_FALSE(ds.info().tornTail);
    EXPECT_EQ(1u, ds.info().replayedRecords);  // just the post-compact put
    EXPECT_EQ(1, ds.store().get("a").asInt());
    EXPECT_EQ("bin", ds.store().get("b").asString());
    EXPECT_EQ(3, ds.store().get("c").asInt());
    d.stop();
  }
}

TEST(DurableState, TornWalTailRecoversAppliedPrefix) {
  const std::uint64_t seed = testkit::testSeed(911);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  const std::string dir = tempDir("torn_durable");
  {
    Dapplet d(net, "p1", recoveryCfg(clock, 1));
    recovery::DurableState ds(d, dir);
    ds.store().put("a", Value(static_cast<std::int64_t>(1)));
    ds.store().put("b", Value(static_cast<std::int64_t>(2)));
    d.stop();
  }
  appendRaw(dir + "/state.wal", "u123 u9 torn");
  Dapplet d(net, "p2", recoveryCfg(clock, 2));
  recovery::DurableState ds(d, dir);
  EXPECT_TRUE(ds.info().tornTail);
  EXPECT_EQ(2u, ds.info().replayedRecords);
  EXPECT_EQ(1, ds.store().get("a").asInt());
  EXPECT_EQ(2, ds.store().get("b").asInt());
  d.stop();
}

// ---------------------------------------------------------------------------
// Coordinated checkpoints (CheckpointService + bindCheckpoint)
// ---------------------------------------------------------------------------

TEST(CoordinatedCheckpoint, GlobalCutCompactsEveryMember) {
  const std::uint64_t seed = testkit::testSeed(912);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  const std::string dir0 = tempDir("coord0");
  const std::string dir1 = tempDir("coord1");
  {
    Dapplet d0(net, "m0", recoveryCfg(clock, 1));
    Dapplet d1(net, "m1", recoveryCfg(clock, 2));
    recovery::DurableState ds0(d0, dir0);
    recovery::DurableState ds1(d1, dir1);
    CheckpointService cp0(d0, [&] { return Value(ds0.store().snapshot()); });
    CheckpointService cp1(d1, [&] { return Value(ds1.store().snapshot()); });
    recovery::bindCheckpoint(cp0, ds0);
    recovery::bindCheckpoint(cp1, ds1);
    cp0.attach({cp0.ref(), cp1.ref()}, 0);
    cp1.attach({cp0.ref(), cp1.ref()}, 1);

    ds0.store().put("x", Value(static_cast<std::int64_t>(1)));
    ds1.store().put("y", Value(static_cast<std::int64_t>(2)));
    EXPECT_GT(ds0.stats().walBytes, 0u);
    EXPECT_GT(ds1.stats().walBytes, 0u);

    cp0.take(milliseconds(50), seconds(10));

    // The cut compacted both members: images on disk, logs empty.
    EXPECT_EQ(1u, ds0.stats().checkpoints);
    EXPECT_EQ(1u, ds1.stats().checkpoints);
    EXPECT_EQ(0u, ds0.stats().walBytes);
    EXPECT_EQ(0u, ds1.stats().walBytes);
    d0.stop();
    d1.stop();
  }
  // The checkpoint image alone (no WAL tail) carries member 1's state, and
  // it is stamped with the cut's logical time.
  Dapplet d(net, "m1b", recoveryCfg(clock, 3));
  recovery::DurableState ds(d, dir1);
  EXPECT_TRUE(ds.info().recovered);
  EXPECT_EQ(0u, ds.info().replayedRecords);
  EXPECT_GT(ds.info().checkpointAt, 0u);
  EXPECT_EQ(2, ds.store().get("y").asInt());
  d.stop();
}

// ---------------------------------------------------------------------------
// Kill -> restart -> REJOIN
// ---------------------------------------------------------------------------

constexpr std::int64_t kItems = 6;

Value roleParams(const std::string& role) {
  ValueMap params;
  params["role"] = Value(role);
  return Value(std::move(params));
}

/// One app, two roles.  "feeder" streams numbered items and retries until
/// each is acked; "sum" folds them into durable state exactly once (the
/// journaled lastSeq dedups redelivery across the restart).
void registerPipelineApp(SessionAgent& agent) {
  agent.registerApp("rec.pipeline", [](SessionContext& ctx) {
    const std::string role = ctx.params().at("role").asString();
    if (role == "feeder") {
      Outbox& out = ctx.outbox("out");
      Inbox& ack = ctx.inbox("ack");
      std::int64_t next = 1;
      while (next <= kItems && !ctx.stopToken().stop_requested()) {
        DataMessage item("item");
        item.set("seq", Value(static_cast<long long>(next)));
        try {
          out.send(item);
        } catch (const Error&) {
          out.reset();  // victim down; the rejoin WIRE re-points us
        }
        try {
          if (auto del = ack.receiveFor(milliseconds(200))) {
            const auto* msg =
                dynamic_cast<const DataMessage*>(del->message.get());
            if (msg != nullptr && msg->kind() == "ack") {
              next = std::max<std::int64_t>(next, msg->get("seq").asInt() + 1);
            }
          }
        } catch (const PeerDownError&) {
          // Eviction notice: keep retrying until the member rejoins.
        }
      }
      ctx.setResult(Value(static_cast<long long>(next - 1)));
      return;
    }
    // "sum": resumes from the journaled prefix after a restart.
    Inbox& in = ctx.inbox("in");
    Outbox& out = ctx.outbox("out");
    StateView& state = ctx.state();
    std::int64_t last = state.getOr("rec.lastSeq", Value(0)).asInt();
    std::int64_t sum = state.getOr("rec.sum", Value(0)).asInt();
    while (last < kItems && !ctx.stopToken().stop_requested()) {
      std::optional<Delivery> del;
      try {
        del = in.receiveFor(milliseconds(200));
      } catch (const PeerDownError&) {
        continue;
      }
      if (!del) continue;
      const auto* msg = dynamic_cast<const DataMessage*>(del->message.get());
      if (msg == nullptr || msg->kind() != "item") continue;
      const std::int64_t seq = msg->get("seq").asInt();
      if (seq == last + 1) {  // exactly-once apply
        // Pace each apply in virtual time so the test can crash this member
        // provably mid-stream (item k lands at ~k * 100ms virtual).
        ctx.dapplet().clockSource().sleepFor(milliseconds(100));
        sum += seq;
        last = seq;
        state.put("rec.sum", Value(static_cast<long long>(sum)));
        state.put("rec.lastSeq", Value(static_cast<long long>(last)));
      }
      if (seq <= last) {
        DataMessage ackMsg("ack");
        ackMsg.set("seq", Value(static_cast<long long>(last)));
        try {
          out.send(ackMsg);
        } catch (const Error&) {
          out.reset();
        }
      }
    }
    ctx.setResult(Value(static_cast<long long>(sum)));
  });
}

Initiator::Plan pipelinePlan(const InboxRef& feederCtl,
                             const InboxRef& victimCtl) {
  Initiator::Plan plan;
  plan.app = "rec.pipeline";
  Initiator::MemberPlan feeder;
  feeder.name = "feeder";
  feeder.control = feederCtl;
  feeder.inboxes = {"ack"};
  feeder.params = roleParams("feeder");
  Initiator::MemberPlan victim;
  victim.name = "victim";
  victim.control = victimCtl;
  victim.inboxes = {"in"};
  victim.writeKeys = {"rec.sum", "rec.lastSeq"};
  victim.params = roleParams("sum");
  plan.members = {feeder, victim};
  plan.edges = {{"feeder", "out", "victim", "in"},
                {"victim", "out", "feeder", "ack"}};
  plan.phaseTimeout = seconds(30);
  return plan;
}

/// Parks the (guest) test thread until the paced pipeline is provably
/// mid-stream, returning the victim's durable progress at the crash point.
std::int64_t settleMidStream(testkit::VirtualClock& clock,
                             recovery::DurableState& ds) {
  clock.sleepFor(milliseconds(250));
  const std::int64_t progress =
      ds.store().getOr("rec.lastSeq", Value(0)).asInt();
  EXPECT_GE(progress, 1);
  EXPECT_LT(progress, kItems);
  return progress;
}

TEST(Rejoin, KillRestartRejoinBeforeEvictionConverges) {
  // No failure detector: the restart always wins the race against eviction
  // (the initiator still believes the old process is alive), exercising the
  // idempotent re-registration path — the member must be re-pointed, never
  // duplicated, and survivors must learn the old address is dead.
  const std::uint64_t seed = testkit::testSeed(920);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  const std::string dir = tempDir("rejoin");

  Dapplet director(net, "director", recoveryCfg(clock, 1));
  Dapplet feeder(net, "feeder", recoveryCfg(clock, 2));
  SessionAgent feederAgent(feeder);
  registerPipelineApp(feederAgent);

  auto victim = std::make_unique<Dapplet>(net, "victim", recoveryCfg(clock, 3));
  auto vds = std::make_unique<recovery::DurableState>(*victim, dir);
  SessionAgent::Config vcfg;
  vcfg.store = &vds->store();
  vcfg.durableSessions = true;
  vcfg.incarnation = vds->incarnation();
  auto victimAgent = std::make_unique<SessionAgent>(*victim, vcfg);
  registerPipelineApp(*victimAgent);

  Initiator initiator(director);
  auto result = initiator.establish(
      pipelinePlan(feederAgent.controlRef(), victimAgent->controlRef()));
  ASSERT_TRUE(result.ok);

  // Let the pipeline make durable progress, then kill the victim cold.
  const std::int64_t progress = settleMidStream(clock, *vds);
  victim->crash();
  victimAgent.reset();
  vds.reset();
  victim.reset();

  // Restart: same durable directory, new process at a new address.
  auto victim2 =
      std::make_unique<Dapplet>(net, "victim", recoveryCfg(clock, 4));
  auto vds2 = std::make_unique<recovery::DurableState>(*victim2, dir);
  EXPECT_TRUE(vds2->info().recovered);
  EXPECT_EQ(2u, vds2->incarnation());
  // No durable progress lost: the clock keeps running between the progress
  // read and crash(), so recovered state may be ahead, but never behind.
  EXPECT_GE(vds2->store().getOr("rec.lastSeq", Value(0)).asInt(), progress);
  SessionAgent::Config vcfg2;
  vcfg2.store = &vds2->store();
  vcfg2.durableSessions = true;
  vcfg2.incarnation = vds2->incarnation();
  auto victimAgent2 = std::make_unique<SessionAgent>(*victim2, vcfg2);
  registerPipelineApp(*victimAgent2);
  const auto rejoining = victimAgent2->rejoinPersisted();
  ASSERT_EQ(1u, rejoining.size());
  EXPECT_EQ(result.sessionId, rejoining[0]);

  auto results = initiator.awaitCompletion(result.sessionId, seconds(120));
  EXPECT_EQ(kItems * (kItems + 1) / 2, results.at("victim").asInt());
  EXPECT_EQ(kItems, results.at("feeder").asInt());
  // Never evicted, never double-registered: exactly the two planned members.
  EXPECT_EQ(2u, results.size());
  EXPECT_TRUE(initiator.downMembers(result.sessionId).empty());
  EXPECT_EQ(1u, victimAgent2->stats().rejoinsSent);
  EXPECT_EQ(1u, feederAgent.stats().peersRejoined);
  initiator.terminate(result.sessionId);

  victimAgent2.reset();
  vds2.reset();
  victim2->stop();
  feeder.stop();
  director.stop();
}

TEST(Rejoin, RestartAfterEvictionUnEvicts) {
  // With a failure detector the eviction completes first: the victim is in
  // downMembers and survivors dropped its bindings.  The rejoin must then
  // un-evict — clear the verdict, re-wire, and still produce full results.
  const std::uint64_t seed = testkit::testSeed(921);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  const std::string dir = tempDir("unevict");

  LivenessConfig live;
  live.heartbeatInterval = milliseconds(25);
  live.suspectTimeout = milliseconds(200);

  Dapplet director(net, "director", recoveryCfg(clock, 1));
  LivenessMonitor directorMon(director, live);
  Dapplet feeder(net, "feeder", recoveryCfg(clock, 2));
  LivenessMonitor feederMon(feeder, live);
  SessionAgent::Config fcfg;
  fcfg.monitor = &feederMon;
  SessionAgent feederAgent(feeder, fcfg);
  registerPipelineApp(feederAgent);

  auto victim = std::make_unique<Dapplet>(net, "victim", recoveryCfg(clock, 3));
  auto victimMon = std::make_unique<LivenessMonitor>(*victim, live);
  auto vds = std::make_unique<recovery::DurableState>(*victim, dir);
  SessionAgent::Config vcfg;
  vcfg.store = &vds->store();
  vcfg.durableSessions = true;
  vcfg.incarnation = vds->incarnation();
  vcfg.monitor = victimMon.get();
  auto victimAgent = std::make_unique<SessionAgent>(*victim, vcfg);
  registerPipelineApp(*victimAgent);

  Initiator initiator(director, &directorMon);
  auto result = initiator.establish(
      pipelinePlan(feederAgent.controlRef(), victimAgent->controlRef()));
  ASSERT_TRUE(result.ok);

  settleMidStream(clock, *vds);
  victim->crash();
  victimAgent.reset();
  vds.reset();
  victimMon.reset();
  victim.reset();

  // Wait until the detector's verdict lands: the victim is evicted.
  while (initiator.downMembers(result.sessionId).count("victim") == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto victim2 =
      std::make_unique<Dapplet>(net, "victim", recoveryCfg(clock, 4));
  auto victimMon2 = std::make_unique<LivenessMonitor>(*victim2, live);
  auto vds2 = std::make_unique<recovery::DurableState>(*victim2, dir);
  EXPECT_EQ(2u, vds2->incarnation());
  SessionAgent::Config vcfg2;
  vcfg2.store = &vds2->store();
  vcfg2.durableSessions = true;
  vcfg2.incarnation = vds2->incarnation();
  vcfg2.monitor = victimMon2.get();
  auto victimAgent2 = std::make_unique<SessionAgent>(*victim2, vcfg2);
  registerPipelineApp(*victimAgent2);
  ASSERT_EQ(1u, victimAgent2->rejoinPersisted().size());

  auto results = initiator.awaitCompletion(result.sessionId, seconds(120));
  EXPECT_EQ(kItems * (kItems + 1) / 2, results.at("victim").asInt());
  EXPECT_EQ(kItems, results.at("feeder").asInt());
  // The eviction verdict was cleared by the rejoin.
  EXPECT_TRUE(initiator.downMembers(result.sessionId).empty());
  initiator.terminate(result.sessionId);

  victimAgent2.reset();
  vds2.reset();
  victimMon2.reset();
  victim2->stop();
  feeder.stop();
  director.stop();
}

constexpr std::int64_t kCountTarget = 5;

void registerCounterApp(SessionAgent& agent) {
  agent.registerApp("rec.count", [](SessionContext& ctx) {
    StateView& state = ctx.state();
    std::int64_t n = state.getOr("rec.counter", Value(0)).asInt();
    while (n < kCountTarget && !ctx.stopToken().stop_requested()) {
      // Paced like the pipeline: one increment per 100ms of virtual time,
      // so a crash at +250ms is guaranteed to interrupt the count.
      ctx.dapplet().clockSource().sleepFor(milliseconds(100));
      ++n;
      state.put("rec.counter", Value(static_cast<long long>(n)));
    }
    ctx.setResult(Value(static_cast<long long>(n)));
  });
}

TEST(Rejoin, TwoConcurrentRestartsBothRecover) {
  const std::uint64_t seed = testkit::testSeed(922);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  const std::string dirs[2] = {tempDir("multi0"), tempDir("multi1")};

  Dapplet director(net, "director", recoveryCfg(clock, 1));
  Initiator initiator(director);

  struct Member {
    std::unique_ptr<Dapplet> dapplet;
    std::unique_ptr<recovery::DurableState> durable;
    std::unique_ptr<SessionAgent> agent;
  };
  auto boot = [&](int index, std::uint32_t host) {
    Member m;
    m.dapplet = std::make_unique<Dapplet>(
        net, "v" + std::to_string(index), recoveryCfg(clock, host));
    m.durable =
        std::make_unique<recovery::DurableState>(*m.dapplet, dirs[index]);
    SessionAgent::Config cfg;
    cfg.store = &m.durable->store();
    cfg.durableSessions = true;
    cfg.incarnation = m.durable->incarnation();
    m.agent = std::make_unique<SessionAgent>(*m.dapplet, cfg);
    registerCounterApp(*m.agent);
    return m;
  };
  Member members[2] = {boot(0, 2), boot(1, 3)};

  Initiator::Plan plan;
  plan.app = "rec.count";
  for (int i = 0; i < 2; ++i) {
    Initiator::MemberPlan mp;
    mp.name = "v" + std::to_string(i);
    mp.control = members[i].agent->controlRef();
    mp.writeKeys = {"rec.counter"};
    mp.params = roleParams("count");
    plan.members.push_back(mp);
  }
  plan.phaseTimeout = seconds(30);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);

  clock.sleepFor(milliseconds(250));
  for (auto& m : members) {
    const std::int64_t n =
        m.durable->store().getOr("rec.counter", Value(0)).asInt();
    EXPECT_GE(n, 1);
    EXPECT_LT(n, kCountTarget);
  }
  for (auto& m : members) m.dapplet->crash();
  for (auto& m : members) {
    m.agent.reset();
    m.durable.reset();
    m.dapplet.reset();
  }

  Member restarted[2] = {boot(0, 4), boot(1, 5)};
  for (auto& m : restarted) {
    EXPECT_EQ(2u, m.durable->incarnation());
    ASSERT_EQ(1u, m.agent->rejoinPersisted().size());
  }

  auto results = initiator.awaitCompletion(result.sessionId, seconds(120));
  EXPECT_EQ(kCountTarget, results.at("v0").asInt());
  EXPECT_EQ(kCountTarget, results.at("v1").asInt());
  EXPECT_TRUE(initiator.downMembers(result.sessionId).empty());
  initiator.terminate(result.sessionId);

  for (auto& m : restarted) {
    m.agent.reset();
    m.durable.reset();
    m.dapplet->stop();
  }
  director.stop();
}

// ---------------------------------------------------------------------------
// Token accounting across a restart
// ---------------------------------------------------------------------------

std::string colorHomedAt(std::size_t want, std::size_t members) {
  for (int i = 0; i < 1000; ++i) {
    const std::string c = "c" + std::to_string(i);
    if (TokenManager::homeOfColor(c, members) == want) return c;
  }
  throw TokenError("no colour found");
}

TEST(TokenRecovery, RestartConservesTokensAndRewiresGrants) {
  const std::uint64_t seed = testkit::testSeed(923);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  const std::string dir = tempDir("tokens");
  const std::string c0 = colorHomedAt(0, 2);  // homed at the survivor
  const std::string c1 = colorHomedAt(1, 2);  // homed at the victim

  Dapplet a(net, "a", recoveryCfg(clock, 1));
  // Keep the deadlock prober quiet: a requester that already holds tokens
  // of the colour it awaits trips the edge-chasing probe, and here we want
  // the plain timeout-then-retry contract instead.
  TokenConfig aCfg;
  aCfg.probeDelay = seconds(60);
  TokenManager ma(a, aCfg);

  auto b = std::make_unique<Dapplet>(net, "b", recoveryCfg(clock, 2));
  auto bds = std::make_unique<recovery::DurableState>(*b, dir);
  TokenConfig bCfg;
  bCfg.journal = &bds->store();
  auto mb = std::make_unique<TokenManager>(*b, bCfg);

  ma.attach({ma.ref(), mb->ref()}, 0, {{c0, 3}});
  mb->attach({ma.ref(), mb->ref()}, 1, {{c1, 5}});

  // Spread c1 across both members, then kill its home mid-session.
  mb->request({{c1, 2}});
  ma.request({{c1, 2}});
  {
    auto totals = ma.totalTokens();
    EXPECT_EQ(5, totals.at(c1));
    EXPECT_EQ(3, totals.at(c0));
  }
  // Traffic in flight at the kill: this request's home dies before it can
  // answer.  The waiter queue is deliberately not journaled — the caller's
  // contract is timeout-then-retry against the restarted home.
  EXPECT_THROW(ma.request({{c1, 3}}, milliseconds(300)), TimeoutError);

  b->crash();
  mb.reset();
  bds.reset();
  b.reset();

  auto b2 = std::make_unique<Dapplet>(net, "b", recoveryCfg(clock, 3));
  auto bds2 = std::make_unique<recovery::DurableState>(*b2, dir);
  EXPECT_TRUE(bds2->info().recovered);
  TokenConfig b2Cfg;
  b2Cfg.journal = &bds2->store();
  auto mb2 = std::make_unique<TokenManager>(*b2, b2Cfg);
  // Same seed bag as the first boot: the journaled pool must win, or the
  // restart would mint a second batch of every c1 token.
  mb2->attach({ma.ref(), mb2->ref()}, 1, {{c1, 5}});
  EXPECT_EQ(2, mb2->holdsTokens().at(c1));
  ma.rewire(1, mb2->ref());

  // The restarted home still accounts the survivor's 2 and its own 2 as
  // held: only 1 free, so conservation held across the crash.
  mb2->release({{c1, 2}});
  ma.request({{c1, 3}}, seconds(10));  // grants flow from the new address
  EXPECT_EQ(5, ma.holdsTokens().at(c1));
  {
    auto totals = ma.totalTokens();
    EXPECT_EQ(5, totals.at(c1));
    EXPECT_EQ(3, totals.at(c0));
  }
  ma.release({{c1, TokenRequest::kAllTokens}});

  mb2.reset();
  bds2.reset();
  b2->stop();
  a.stop();
}

}  // namespace
}  // namespace dapple
