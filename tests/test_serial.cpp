// Unit + property tests for the serialization layer: the text wire format,
// Values, the message registry, and DataMessage.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "dapple/serial/data_message.hpp"
#include "dapple/serial/message.hpp"
#include "dapple/serial/value.hpp"
#include "dapple/serial/wire.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(Wire, ScalarRoundTrip) {
  TextWriter w;
  w.writeI64(-42);
  w.writeU64(17);
  w.writeF64(3.25);
  w.writeBool(true);
  w.writeBool(false);
  w.writeString("hello world");
  w.writeNull();

  TextReader r(w.str());
  EXPECT_EQ(r.readI64(), -42);
  EXPECT_EQ(r.readU64(), 17u);
  EXPECT_EQ(r.readF64(), 3.25);
  EXPECT_TRUE(r.readBool());
  EXPECT_FALSE(r.readBool());
  EXPECT_EQ(r.readString(), "hello world");
  r.readNull();
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, ExtremeIntegers) {
  TextWriter w;
  w.writeI64(std::numeric_limits<std::int64_t>::min());
  w.writeI64(std::numeric_limits<std::int64_t>::max());
  w.writeU64(std::numeric_limits<std::uint64_t>::max());
  TextReader r(w.str());
  EXPECT_EQ(r.readI64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.readI64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.readU64(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Wire, DoublesRoundTripExactly) {
  const double values[] = {0.0,     -0.0,   1.0 / 3.0,        1e308,
                           5e-324,  -2.5e7, 3.141592653589793, 1e-9};
  for (double v : values) {
    TextWriter w;
    w.writeF64(v);
    TextReader r(w.str());
    const double back = r.readF64();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << v;
  }
}

TEST(Wire, StringsWithBinaryContent) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  TextWriter w;
  w.writeString(payload);
  w.writeString("");       // empty
  w.writeString(" a b ");  // embedded spaces
  TextReader r(w.str());
  EXPECT_EQ(r.readString(), payload);
  EXPECT_EQ(r.readString(), "");
  EXPECT_EQ(r.readString(), " a b ");
}

TEST(Wire, NestedLists) {
  TextWriter w;
  w.beginList(2);
  w.beginList(2);
  w.writeI64(1);
  w.writeI64(2);
  w.beginList(0);
  TextReader r(w.str());
  EXPECT_EQ(r.beginList(), 2u);
  EXPECT_EQ(r.beginList(), 2u);
  EXPECT_EQ(r.readI64(), 1);
  EXPECT_EQ(r.readI64(), 2);
  EXPECT_EQ(r.beginList(), 0u);
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, TypeMismatchThrows) {
  TextWriter w;
  w.writeI64(5);
  TextReader r(w.str());
  EXPECT_THROW(r.readString(), SerializationError);
}

TEST(Wire, TruncatedStringThrows) {
  TextReader r("s10:short");
  EXPECT_THROW(r.readString(), SerializationError);
}

TEST(Wire, MalformedInputsThrow) {
  EXPECT_THROW(TextReader("ix").readI64(), SerializationError);
  EXPECT_THROW(TextReader("").readI64(), SerializationError);
  EXPECT_THROW(TextReader("b7").readBool(), SerializationError);
  EXPECT_THROW(TextReader("s5x:abcde").readString(), SerializationError);
  EXPECT_THROW(TextReader("q9").readU64(), SerializationError);
}

TEST(Wire, ReadStringViewAliasesWireBuffer) {
  TextWriter w;
  w.writeString("payload-bytes");
  const std::string wire = std::move(w).str();
  TextReader r(wire);
  const std::string_view view = r.readStringView();
  EXPECT_EQ(view, "payload-bytes");
  // Zero-copy: the view points into the wire buffer itself.
  EXPECT_GE(view.data(), wire.data());
  EXPECT_LE(view.data() + view.size(), wire.data() + wire.size());
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, ReadStringViewChecksLikeReadString) {
  EXPECT_THROW(TextReader("s10:short").readStringView(), SerializationError);
  EXPECT_THROW(TextReader("i3").readStringView(), SerializationError);
  EXPECT_EQ(TextReader("s0:").readStringView(), "");
}

TEST(Wire, BeginStringMatchesOutOfBandPayload) {
  // beginString writes only the s<len>: header; appending exactly len raw
  // bytes afterwards must yield the same wire text as writeString.
  const std::string body = "shared body \x01\x02 bytes";
  TextWriter header;
  header.writeU64(7);
  header.beginString(body.size());
  std::string assembled = std::move(header).str();
  assembled += body;  // the scatter/gather step

  TextWriter direct;
  direct.writeU64(7);
  direct.writeString(body);
  EXPECT_EQ(assembled, direct.str());

  TextReader r(assembled);
  EXPECT_EQ(r.readU64(), 7u);
  EXPECT_EQ(r.readStringView(), body);
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, PeekDoesNotConsume) {
  TextWriter w;
  w.writeI64(1);
  TextReader r(w.str());
  EXPECT_EQ(r.peek(), 'i');
  EXPECT_EQ(r.peek(), 'i');
  EXPECT_EQ(r.readI64(), 1);
  EXPECT_EQ(r.peek(), '\0');
}

// ---------------------------------------------------------------------------
// Value: property-style random round trips
// ---------------------------------------------------------------------------

Value randomValue(Rng& rng, int depth) {
  const auto pick = rng.below(depth > 2 ? 5 : 7);
  switch (pick) {
    case 0:
      return Value();
    case 1:
      return Value(rng.chance(0.5));
    case 2:
      return Value(static_cast<long long>(rng()));
    case 3:
      return Value(rng.uniform01() * 1e6 - 5e5);
    case 4: {
      std::string s;
      const auto len = rng.below(20);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.below(256)));
      }
      return Value(std::move(s));
    }
    case 5: {
      ValueList list;
      const auto n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        list.push_back(randomValue(rng, depth + 1));
      }
      return Value(std::move(list));
    }
    default: {
      ValueMap map;
      const auto n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        map["k" + std::to_string(i)] = randomValue(rng, depth + 1);
      }
      return Value(std::move(map));
    }
  }
}

class ValueRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValueRoundTrip, RandomValueSurvivesWire) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value v = randomValue(rng, 0);
    const Value back = Value::fromWire(v.toWire());
    EXPECT_TRUE(v == back);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(Value, TypePredicatesAndAccessors) {
  EXPECT_TRUE(Value().isNull());
  EXPECT_TRUE(Value(true).isBool());
  EXPECT_TRUE(Value(7).isInt());
  EXPECT_TRUE(Value(1.5).isDouble());
  EXPECT_TRUE(Value("s").isString());
  EXPECT_TRUE(Value(ValueList{}).isList());
  EXPECT_TRUE(Value(ValueMap{}).isMap());
}

TEST(Value, WrongTypeAccessThrows) {
  EXPECT_THROW(Value(7).asString(), SerializationError);
  EXPECT_THROW(Value("x").asInt(), SerializationError);
  EXPECT_THROW(Value().asBool(), SerializationError);
}

TEST(Value, AsDoubleAcceptsInt) {
  EXPECT_EQ(Value(7).asDouble(), 7.0);
  EXPECT_EQ(Value(2.5).asDouble(), 2.5);
}

TEST(Value, MapAtAndContains) {
  ValueMap map;
  map["a"] = Value(1);
  const Value v(std::move(map));
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("b"));
  EXPECT_EQ(v.at("a").asInt(), 1);
  EXPECT_THROW(v.at("b"), StateError);
}

TEST(Value, TrailingDataRejected) {
  TextWriter w;
  w.writeI64(1);
  w.writeI64(2);
  EXPECT_THROW(Value::fromWire(w.str()), SerializationError);
}

// ---------------------------------------------------------------------------
// Message registry
// ---------------------------------------------------------------------------

struct TestGreeting : MessageBase<TestGreeting> {
  static constexpr std::string_view kTypeName = "test.Greeting";
  std::string who;
  std::int64_t n = 0;

  void encodeFields(TextWriter& w) const override {
    w.writeString(who);
    w.writeI64(n);
  }
  void decodeFields(TextReader& r) override {
    who = r.readString();
    n = r.readI64();
  }
};
DAPPLE_REGISTER_MESSAGE(TestGreeting)

TEST(MessageRegistry, RoundTripReconstructsOriginalType) {
  TestGreeting msg;
  msg.who = "mani";
  msg.n = 1996;
  const std::string wire = encodeMessage(msg);
  auto back = decodeMessage(wire);
  ASSERT_EQ(back->typeName(), "test.Greeting");
  const auto& typed = messageAs<TestGreeting>(*back);
  EXPECT_EQ(typed.who, "mani");
  EXPECT_EQ(typed.n, 1996);
}

TEST(MessageRegistry, UnknownTypeThrows) {
  TextWriter w;
  w.writeString("no.such.Type");
  EXPECT_THROW(decodeMessage(w.str()), SerializationError);
}

TEST(MessageRegistry, Knows) {
  EXPECT_TRUE(MessageRegistry::instance().knows("test.Greeting"));
  EXPECT_TRUE(MessageRegistry::instance().knows("dapple.Data"));
  EXPECT_FALSE(MessageRegistry::instance().knows("bogus"));
}

TEST(MessageRegistry, CloneIsDeep) {
  TestGreeting msg;
  msg.who = "a";
  auto copy = msg.clone();
  msg.who = "b";
  EXPECT_EQ(messageAs<TestGreeting>(*copy).who, "a");
}

TEST(MessageRegistry, MessageAsWrongTypeThrows) {
  TestGreeting msg;
  EXPECT_THROW(messageAs<DataMessage>(msg), SerializationError);
}

TEST(MessageRegistry, TrailingDataRejected) {
  TestGreeting msg;
  std::string wire = encodeMessage(msg);
  wire += " i5";
  EXPECT_THROW(decodeMessage(wire), SerializationError);
}

// ---------------------------------------------------------------------------
// DataMessage
// ---------------------------------------------------------------------------

TEST(DataMessage, FieldsAndRoundTrip) {
  DataMessage msg("order.created");
  msg.set("id", Value(99));
  msg.set("tags", Value(ValueList{Value("a"), Value("b")}));
  EXPECT_TRUE(msg.has("id"));
  EXPECT_FALSE(msg.has("missing"));
  EXPECT_THROW(msg.get("missing"), StateError);

  auto back = decodeMessage(encodeMessage(msg));
  const auto& typed = messageAs<DataMessage>(*back);
  EXPECT_EQ(typed.kind(), "order.created");
  EXPECT_EQ(typed.get("id").asInt(), 99);
  EXPECT_EQ(typed.get("tags").asList().size(), 2u);
}

TEST(DataMessage, EmptyBody) {
  DataMessage msg("ping");
  auto back = decodeMessage(encodeMessage(msg));
  EXPECT_EQ(messageAs<DataMessage>(*back).kind(), "ping");
}

}  // namespace
}  // namespace dapple
