// Unit + property tests for the serialization layer: both wire codecs
// (text and binary), Values, the message registry, and DataMessage.
// The whole file is also compiled as an AddressSanitizer twin
// (test_serial_asan) so the malformed-input sweeps below prove "throws
// SerializationError, never UB" under instrumentation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "dapple/serial/data_message.hpp"
#include "dapple/serial/message.hpp"
#include "dapple/serial/value.hpp"
#include "dapple/serial/wire.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.writeI64(-42);
  w.writeU64(17);
  w.writeF64(3.25);
  w.writeBool(true);
  w.writeBool(false);
  w.writeString("hello world");
  w.writeNull();

  WireReader r(w.str());
  EXPECT_EQ(r.readI64(), -42);
  EXPECT_EQ(r.readU64(), 17u);
  EXPECT_EQ(r.readF64(), 3.25);
  EXPECT_TRUE(r.readBool());
  EXPECT_FALSE(r.readBool());
  EXPECT_EQ(r.readString(), "hello world");
  r.readNull();
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, ExtremeIntegers) {
  WireWriter w;
  w.writeI64(std::numeric_limits<std::int64_t>::min());
  w.writeI64(std::numeric_limits<std::int64_t>::max());
  w.writeU64(std::numeric_limits<std::uint64_t>::max());
  WireReader r(w.str());
  EXPECT_EQ(r.readI64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.readI64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.readU64(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Wire, DoublesRoundTripExactly) {
  const double values[] = {0.0,     -0.0,   1.0 / 3.0,        1e308,
                           5e-324,  -2.5e7, 3.141592653589793, 1e-9};
  for (double v : values) {
    WireWriter w;
    w.writeF64(v);
    WireReader r(w.str());
    const double back = r.readF64();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << v;
  }
}

TEST(Wire, StringsWithBinaryContent) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  WireWriter w;
  w.writeString(payload);
  w.writeString("");       // empty
  w.writeString(" a b ");  // embedded spaces
  WireReader r(w.str());
  EXPECT_EQ(r.readString(), payload);
  EXPECT_EQ(r.readString(), "");
  EXPECT_EQ(r.readString(), " a b ");
}

TEST(Wire, NestedLists) {
  WireWriter w;
  w.beginList(2);
  w.beginList(2);
  w.writeI64(1);
  w.writeI64(2);
  w.beginList(0);
  WireReader r(w.str());
  EXPECT_EQ(r.beginList(), 2u);
  EXPECT_EQ(r.beginList(), 2u);
  EXPECT_EQ(r.readI64(), 1);
  EXPECT_EQ(r.readI64(), 2);
  EXPECT_EQ(r.beginList(), 0u);
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, TypeMismatchThrows) {
  WireWriter w;
  w.writeI64(5);
  WireReader r(w.str());
  EXPECT_THROW(r.readString(), SerializationError);
}

TEST(Wire, TruncatedStringThrows) {
  WireReader r("s10:short");
  EXPECT_THROW(r.readString(), SerializationError);
}

TEST(Wire, MalformedInputsThrow) {
  EXPECT_THROW(WireReader("ix").readI64(), SerializationError);
  EXPECT_THROW(WireReader("").readI64(), SerializationError);
  EXPECT_THROW(WireReader("b7").readBool(), SerializationError);
  EXPECT_THROW(WireReader("s5x:abcde").readString(), SerializationError);
  EXPECT_THROW(WireReader("q9").readU64(), SerializationError);
}

TEST(Wire, ReadStringViewAliasesWireBuffer) {
  WireWriter w;
  w.writeString("payload-bytes");
  const std::string wire = std::move(w).str();
  WireReader r(wire);
  const std::string_view view = r.readStringView();
  EXPECT_EQ(view, "payload-bytes");
  // Zero-copy: the view points into the wire buffer itself.
  EXPECT_GE(view.data(), wire.data());
  EXPECT_LE(view.data() + view.size(), wire.data() + wire.size());
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, ReadStringViewChecksLikeReadString) {
  EXPECT_THROW(WireReader("s10:short").readStringView(), SerializationError);
  EXPECT_THROW(WireReader("i3").readStringView(), SerializationError);
  EXPECT_EQ(WireReader("s0:").readStringView(), "");
}

TEST(Wire, BeginStringMatchesOutOfBandPayload) {
  // beginString writes only the s<len>: header; appending exactly len raw
  // bytes afterwards must yield the same wire text as writeString.
  const std::string body = "shared body \x01\x02 bytes";
  WireWriter header;
  header.writeU64(7);
  header.beginString(body.size());
  std::string assembled = std::move(header).str();
  assembled += body;  // the scatter/gather step

  WireWriter direct;
  direct.writeU64(7);
  direct.writeString(body);
  EXPECT_EQ(assembled, direct.str());

  WireReader r(assembled);
  EXPECT_EQ(r.readU64(), 7u);
  EXPECT_EQ(r.readStringView(), body);
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, PeekDoesNotConsume) {
  WireWriter w;
  w.writeI64(1);
  WireReader r(w.str());
  EXPECT_EQ(r.peek(), 'i');
  EXPECT_EQ(r.peek(), 'i');
  EXPECT_EQ(r.readI64(), 1);
  EXPECT_EQ(r.peek(), '\0');
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

TEST(WireBinary, ScalarRoundTrip) {
  WireWriter w(WireCodec::kBinary);
  w.writeI64(-42);
  w.writeU64(17);
  w.writeF64(3.25);
  w.writeBool(true);
  w.writeBool(false);
  w.writeString("hello world");
  w.writeNull();

  WireReader r(w.str());
  EXPECT_EQ(r.codec(), WireCodec::kBinary);
  EXPECT_EQ(r.readI64(), -42);
  EXPECT_EQ(r.readU64(), 17u);
  EXPECT_EQ(r.readF64(), 3.25);
  EXPECT_TRUE(r.readBool());
  EXPECT_FALSE(r.readBool());
  EXPECT_EQ(r.readString(), "hello world");
  r.readNull();
  EXPECT_TRUE(r.atEnd());
}

TEST(WireBinary, PreambleAutoDetect) {
  WireWriter bin(WireCodec::kBinary);
  bin.writeU64(7);
  ASSERT_FALSE(bin.str().empty());
  EXPECT_EQ(static_cast<unsigned char>(bin.str()[0]), 0xDBu);
  EXPECT_EQ(WireReader(bin.str()).codec(), WireCodec::kBinary);

  WireWriter text(WireCodec::kText);
  text.writeU64(7);
  EXPECT_EQ(WireReader(text.str()).codec(), WireCodec::kText);
  // Both decode to the same value through the same reader surface.
  EXPECT_EQ(WireReader(bin.str()).readU64(), 7u);
  EXPECT_EQ(WireReader(text.str()).readU64(), 7u);
}

TEST(WireBinary, ExtremeIntegers) {
  WireWriter w(WireCodec::kBinary);
  w.writeI64(std::numeric_limits<std::int64_t>::min());
  w.writeI64(std::numeric_limits<std::int64_t>::max());
  w.writeI64(0);
  w.writeI64(-1);
  w.writeU64(std::numeric_limits<std::uint64_t>::max());
  w.writeU64(0);
  WireReader r(w.str());
  EXPECT_EQ(r.readI64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.readI64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.readI64(), 0);
  EXPECT_EQ(r.readI64(), -1);
  EXPECT_EQ(r.readU64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.readU64(), 0u);
}

TEST(WireBinary, DoublesRoundTripBitExactly) {
  const double values[] = {0.0,     -0.0,   1.0 / 3.0,        1e308,
                           5e-324,  -2.5e7, 3.141592653589793, 1e-9,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (double v : values) {
    WireWriter w(WireCodec::kBinary);
    w.writeF64(v);
    WireReader r(w.str());
    const double back = r.readF64();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << v;
  }
}

TEST(WireBinary, StringsWithEmbeddedPreambleBytes) {
  // Payload bytes equal to the preamble (0xDB) and every other value must
  // ride through untouched — only the *first* byte of a frame is special.
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  WireWriter w(WireCodec::kBinary);
  w.writeString(payload);
  w.writeString("");
  WireReader r(w.str());
  EXPECT_EQ(r.readString(), payload);
  EXPECT_EQ(r.readString(), "");
  EXPECT_TRUE(r.atEnd());
}

TEST(WireBinary, PeekMapsTagsToCanonicalChars) {
  WireWriter w(WireCodec::kBinary);
  w.writeI64(1);
  w.writeU64(2);
  w.writeF64(3.0);
  w.writeBool(true);
  w.writeString("x");
  w.writeNull();
  w.beginList(0);
  w.beginMap(0);
  WireReader r(w.str());
  EXPECT_EQ(r.peek(), 'i');
  r.readI64();
  EXPECT_EQ(r.peek(), 'u');
  r.readU64();
  EXPECT_EQ(r.peek(), 'd');
  r.readF64();
  EXPECT_EQ(r.peek(), 'b');
  r.readBool();
  EXPECT_EQ(r.peek(), 's');
  r.readString();
  EXPECT_EQ(r.peek(), 'n');
  r.readNull();
  EXPECT_EQ(r.peek(), 'l');
  r.beginList();
  EXPECT_EQ(r.peek(), 'm');
  r.beginMap();
  EXPECT_EQ(r.peek(), '\0');
}

TEST(WireBinary, BeginStringMatchesOutOfBandPayload) {
  // The PR 5 scatter/gather contract under the binary codec: beginString
  // writes only the tag + varint length; appending exactly `len` raw bytes
  // yields the same frame as writeString.
  const std::string body = "shared body \x01\xDB\x02 bytes";
  WireWriter header(WireCodec::kBinary);
  header.writeU64(7);
  header.beginString(body.size());
  std::string assembled = std::move(header).str();
  assembled += body;  // the scatter/gather step

  WireWriter direct(WireCodec::kBinary);
  direct.writeU64(7);
  direct.writeString(body);
  EXPECT_EQ(assembled, direct.str());

  WireReader r(assembled);
  EXPECT_EQ(r.readU64(), 7u);
  EXPECT_EQ(r.readStringView(), body);
  EXPECT_TRUE(r.atEnd());
}

TEST(WireBinary, ReadStringViewAliasesWireBuffer) {
  WireWriter w(WireCodec::kBinary);
  w.writeString("payload-bytes");
  const std::string wire = std::move(w).str();
  WireReader r(wire);
  const std::string_view view = r.readStringView();
  EXPECT_EQ(view, "payload-bytes");
  EXPECT_GE(view.data(), wire.data());
  EXPECT_LE(view.data() + view.size(), wire.data() + wire.size());
}

TEST(WireBinary, FramesAreSmallerThanText) {
  const auto encode = [](WireCodec codec) {
    WireWriter w(codec);
    w.writeU64(123456789);
    w.writeI64(-987654321);
    w.writeF64(3.141592653589793);
    w.writeString("key");
    w.beginList(3);
    for (int i = 0; i < 3; ++i) w.writeF64(1e9 + i);
    return std::move(w).str().size();
  };
  EXPECT_LT(encode(WireCodec::kBinary), encode(WireCodec::kText));
}

TEST(WireBinary, ScratchBufferIsRecycled) {
  std::string scratch = "stale contents";
  {
    WireWriter w(WireCodec::kBinary, scratch);
    w.writeU64(1);
    EXPECT_EQ(&w.str(), &scratch);  // borrowed, not copied
  }
  WireReader r1(scratch);
  EXPECT_EQ(r1.readU64(), 1u);
  const char* data = scratch.data();
  const std::size_t cap = scratch.capacity();
  {
    WireWriter w(WireCodec::kBinary, scratch);
    w.writeU64(2);
  }
  // Same allocation reused: no churn across writes that fit the capacity.
  EXPECT_EQ(scratch.data(), data);
  EXPECT_EQ(scratch.capacity(), cap);
  WireReader r2(scratch);
  EXPECT_EQ(r2.readU64(), 2u);
}

TEST(WireBinary, TypeMismatchAndTruncationThrowWithOffset) {
  WireWriter w(WireCodec::kBinary);
  w.writeI64(5);
  WireReader r(w.str());
  try {
    r.readString();
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("at offset"), std::string::npos);
  }

  // Truncated string payload.
  WireWriter w2(WireCodec::kBinary);
  w2.writeString("0123456789");
  std::string cut = std::move(w2).str();
  cut.resize(cut.size() - 4);
  EXPECT_THROW(WireReader(cut).readString(), SerializationError);

  // Truncated f64.
  WireWriter w3(WireCodec::kBinary);
  w3.writeF64(1.5);
  std::string cutF = std::move(w3).str();
  cutF.resize(cutF.size() - 3);
  EXPECT_THROW(WireReader(cutF).readF64(), SerializationError);
}

TEST(WireBinary, VarintOverflowThrows) {
  // 11 continuation bytes cannot encode a u64.
  std::string wire;
  wire.push_back(kBinaryPreamble);
  wire.push_back(static_cast<char>(0xE4));  // u64 tag
  for (int i = 0; i < 10; ++i) wire.push_back(static_cast<char>(0xFF));
  wire.push_back(static_cast<char>(0x7F));
  EXPECT_THROW(WireReader(wire).readU64(), SerializationError);
  // A 10th byte carrying more than the top single bit overflows too.
  std::string wire2;
  wire2.push_back(kBinaryPreamble);
  wire2.push_back(static_cast<char>(0xE4));
  for (int i = 0; i < 9; ++i) wire2.push_back(static_cast<char>(0xFF));
  wire2.push_back(static_cast<char>(0x02));
  EXPECT_THROW(WireReader(wire2).readU64(), SerializationError);
}

TEST(WireBinary, HugeClaimedListCountIsRejectedCheaply) {
  // A corrupt frame may claim a 2^40-element list; decoding must throw a
  // SerializationError from the element reads, not attempt the allocation.
  std::string wire;
  wire.push_back(kBinaryPreamble);
  wire.push_back(static_cast<char>(0xE7));  // list tag
  const std::uint64_t huge = 1ull << 40;
  std::uint64_t v = huge;
  while (v >= 0x80) {
    wire.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  wire.push_back(static_cast<char>(v));
  EXPECT_THROW(Value::fromWire(wire), SerializationError);
}

// ---------------------------------------------------------------------------
// Value: property-style random round trips
// ---------------------------------------------------------------------------

Value randomValue(Rng& rng, int depth) {
  const auto pick = rng.below(depth > 2 ? 5 : 7);
  switch (pick) {
    case 0:
      return Value();
    case 1:
      return Value(rng.chance(0.5));
    case 2:
      return Value(static_cast<long long>(rng()));
    case 3:
      return Value(rng.uniform01() * 1e6 - 5e5);
    case 4: {
      std::string s;
      const auto len = rng.below(20);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.below(256)));
      }
      return Value(std::move(s));
    }
    case 5: {
      ValueList list;
      const auto n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        list.push_back(randomValue(rng, depth + 1));
      }
      return Value(std::move(list));
    }
    default: {
      ValueMap map;
      const auto n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        map["k" + std::to_string(i)] = randomValue(rng, depth + 1);
      }
      return Value(std::move(map));
    }
  }
}

class ValueRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValueRoundTrip, RandomValueSurvivesWire) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value v = randomValue(rng, 0);
    for (const WireCodec codec : {WireCodec::kText, WireCodec::kBinary}) {
      const Value back = Value::fromWire(v.toWire(codec));
      EXPECT_TRUE(v == back) << wireCodecName(codec);
    }
  }
}

TEST_P(ValueRoundTrip, CodecsAgreeOnValue) {
  // The two codecs are different encodings of the same data model: decoding
  // either frame must reconstruct an identical Value.
  Rng rng(GetParam() ^ 0x5eed);
  for (int i = 0; i < 25; ++i) {
    const Value v = randomValue(rng, 0);
    EXPECT_TRUE(Value::fromWire(v.toWire(WireCodec::kText)) ==
                Value::fromWire(v.toWire(WireCodec::kBinary)));
  }
}

TEST_P(ValueRoundTrip, TruncatedFramesThrowNeverUB) {
  // Wire-level fuzz: every proper prefix of a valid frame must throw
  // SerializationError (carrying a byte offset) — under both codecs, and
  // under ASan in the test_serial_asan twin.
  Rng rng(GetParam() ^ 0xdead);
  for (int i = 0; i < 10; ++i) {
    const Value v = randomValue(rng, 0);
    for (const WireCodec codec : {WireCodec::kText, WireCodec::kBinary}) {
      const std::string wire = v.toWire(codec);
      for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        try {
          const Value back = Value::fromWire(wire.substr(0, cut));
          // A prefix that happens to parse (e.g. cutting trailing spaces is
          // impossible, but a text int may shorten) must still be a Value —
          // reaching here without crashing is the property; nothing to
          // assert about its content.
          (void)back;
        } catch (const SerializationError& e) {
          EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
              << e.what();
        }
      }
    }
  }
}

TEST_P(ValueRoundTrip, CorruptedBytesThrowOrParseNeverUB) {
  // Flip every byte of valid frames through a few mutations: the decoder
  // must either throw SerializationError or produce some Value; it must
  // never crash, hang, or trip ASan.
  Rng rng(GetParam() ^ 0xbeef);
  for (int i = 0; i < 5; ++i) {
    const Value v = randomValue(rng, 0);
    for (const WireCodec codec : {WireCodec::kText, WireCodec::kBinary}) {
      const std::string wire = v.toWire(codec);
      for (std::size_t pos = 0; pos < wire.size(); ++pos) {
        std::string mut = wire;
        mut[pos] = static_cast<char>(rng.below(256));
        try {
          (void)Value::fromWire(mut);
        } catch (const SerializationError&) {
          // expected for most mutations
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(Value, TypePredicatesAndAccessors) {
  EXPECT_TRUE(Value().isNull());
  EXPECT_TRUE(Value(true).isBool());
  EXPECT_TRUE(Value(7).isInt());
  EXPECT_TRUE(Value(1.5).isDouble());
  EXPECT_TRUE(Value("s").isString());
  EXPECT_TRUE(Value(ValueList{}).isList());
  EXPECT_TRUE(Value(ValueMap{}).isMap());
}

TEST(Value, WrongTypeAccessThrows) {
  EXPECT_THROW(Value(7).asString(), SerializationError);
  EXPECT_THROW(Value("x").asInt(), SerializationError);
  EXPECT_THROW(Value().asBool(), SerializationError);
}

TEST(Value, AsDoubleAcceptsInt) {
  EXPECT_EQ(Value(7).asDouble(), 7.0);
  EXPECT_EQ(Value(2.5).asDouble(), 2.5);
}

TEST(Value, MapAtAndContains) {
  ValueMap map;
  map["a"] = Value(1);
  const Value v(std::move(map));
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("b"));
  EXPECT_EQ(v.at("a").asInt(), 1);
  EXPECT_THROW(v.at("b"), StateError);
}

TEST(Value, TrailingDataRejected) {
  WireWriter w;
  w.writeI64(1);
  w.writeI64(2);
  EXPECT_THROW(Value::fromWire(w.str()), SerializationError);
}

// ---------------------------------------------------------------------------
// Message registry
// ---------------------------------------------------------------------------

struct TestGreeting : MessageBase<TestGreeting> {
  static constexpr std::string_view kTypeName = "test.Greeting";
  std::string who;
  std::int64_t n = 0;

  void encodeFields(WireWriter& w) const override {
    w.writeString(who);
    w.writeI64(n);
  }
  void decodeFields(WireReader& r) override {
    who = r.readString();
    n = r.readI64();
  }
};
DAPPLE_REGISTER_MESSAGE(TestGreeting)

TEST(MessageRegistry, RoundTripReconstructsOriginalType) {
  TestGreeting msg;
  msg.who = "mani";
  msg.n = 1996;
  const std::string wire = encodeMessage(msg);
  auto back = decodeMessage(wire);
  ASSERT_EQ(back->typeName(), "test.Greeting");
  const auto& typed = messageAs<TestGreeting>(*back);
  EXPECT_EQ(typed.who, "mani");
  EXPECT_EQ(typed.n, 1996);
}

TEST(MessageRegistry, UnknownTypeThrows) {
  WireWriter w;
  w.writeString("no.such.Type");
  EXPECT_THROW(decodeMessage(w.str()), SerializationError);
}

TEST(MessageRegistry, Knows) {
  EXPECT_TRUE(MessageRegistry::instance().knows("test.Greeting"));
  EXPECT_TRUE(MessageRegistry::instance().knows("dapple.Data"));
  EXPECT_FALSE(MessageRegistry::instance().knows("bogus"));
}

TEST(MessageRegistry, CloneIsDeep) {
  TestGreeting msg;
  msg.who = "a";
  auto copy = msg.clone();
  msg.who = "b";
  EXPECT_EQ(messageAs<TestGreeting>(*copy).who, "a");
}

TEST(MessageRegistry, MessageAsWrongTypeThrows) {
  TestGreeting msg;
  EXPECT_THROW(messageAs<DataMessage>(msg), SerializationError);
}

TEST(MessageRegistry, TrailingDataRejected) {
  TestGreeting msg;
  std::string wire = encodeMessage(msg);
  wire += " i5";
  EXPECT_THROW(decodeMessage(wire), SerializationError);
}

TEST(MessageRegistry, BinaryRoundTripReconstructsOriginalType) {
  TestGreeting msg;
  msg.who = "mani";
  msg.n = 1996;
  const std::string wire = encodeMessage(msg, WireCodec::kBinary);
  EXPECT_EQ(static_cast<unsigned char>(wire[0]), 0xDBu);
  auto back = decodeMessage(wire);
  const auto& typed = messageAs<TestGreeting>(*back);
  EXPECT_EQ(typed.who, "mani");
  EXPECT_EQ(typed.n, 1996);
}

TEST(MessageRegistry, BinaryTrailingDataRejected) {
  TestGreeting msg;
  std::string wire = encodeMessage(msg, WireCodec::kBinary);
  wire.push_back('\0');
  EXPECT_THROW(decodeMessage(wire), SerializationError);
}

TEST(MessageRegistry, EncodeMessageIntoRecyclesScratch) {
  TestGreeting msg;
  msg.who = "scratch";
  std::string scratch;
  const std::string_view wire =
      encodeMessageInto(msg, WireCodec::kBinary, scratch);
  EXPECT_EQ(wire.data(), scratch.data());
  EXPECT_EQ(messageAs<TestGreeting>(*decodeMessage(wire)).who, "scratch");
}

TEST(MessageRegistry, MixedNestingTextEnvelopeBinaryBody) {
  // Per-frame auto-detect means a carrier and its nested body may use
  // different codecs: here a text envelope carries a binary message frame
  // as an opaque string token (what a text-configured relay would do with
  // a binary peer's payload), and vice versa.
  TestGreeting msg;
  msg.who = "nested";
  msg.n = 7;
  for (const WireCodec outer : {WireCodec::kText, WireCodec::kBinary}) {
    for (const WireCodec inner : {WireCodec::kText, WireCodec::kBinary}) {
      WireWriter envelope(outer);
      envelope.writeU64(42);
      envelope.writeString(encodeMessage(msg, inner));
      const std::string wire = std::move(envelope).str();

      WireReader r(wire);
      EXPECT_EQ(r.readU64(), 42u);
      auto back = decodeMessage(r.readStringView());
      EXPECT_EQ(messageAs<TestGreeting>(*back).n, 7);
    }
  }
}

// ---------------------------------------------------------------------------
// DataMessage
// ---------------------------------------------------------------------------

TEST(DataMessage, FieldsAndRoundTrip) {
  DataMessage msg("order.created");
  msg.set("id", Value(99));
  msg.set("tags", Value(ValueList{Value("a"), Value("b")}));
  EXPECT_TRUE(msg.has("id"));
  EXPECT_FALSE(msg.has("missing"));
  EXPECT_THROW(msg.get("missing"), StateError);

  auto back = decodeMessage(encodeMessage(msg));
  const auto& typed = messageAs<DataMessage>(*back);
  EXPECT_EQ(typed.kind(), "order.created");
  EXPECT_EQ(typed.get("id").asInt(), 99);
  EXPECT_EQ(typed.get("tags").asList().size(), 2u);
}

TEST(DataMessage, EmptyBody) {
  DataMessage msg("ping");
  auto back = decodeMessage(encodeMessage(msg));
  EXPECT_EQ(messageAs<DataMessage>(*back).kind(), "ping");
}

}  // namespace
}  // namespace dapple
