// Tests for the example applications: the calendar protocols (flat,
// hierarchical, sequential baseline) against a shared ground truth, the
// token-protected design session, and the ring card game.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <memory>
#include <set>

#include "dapple/apps/calendar.hpp"
#include "dapple/apps/cardgame.hpp"
#include "dapple/apps/design.hpp"
#include "dapple/net/sim.hpp"

namespace dapple {
namespace {

using apps::CalendarBook;

/// First day in [0, horizon) free for everyone — computed directly from
/// the stores, as ground truth for every protocol variant.
std::int64_t groundTruthDay(
    const std::vector<std::unique_ptr<StateStore>>& stores,
    std::int64_t horizon) {
  for (std::int64_t day = 0; day < horizon; ++day) {
    bool free = true;
    for (const auto& store : stores) {
      free = free && CalendarBook::isFree(*store, day);
    }
    if (free) return day;
  }
  return -1;
}

struct CalendarRig {
  explicit CalendarRig(std::size_t n, double busyProb, std::uint64_t seed)
      : net(seed) {
    net.setDefaultLink(
        LinkParams{microseconds(300), microseconds(200), 0.0, 0.0});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      names.push_back("p" + std::to_string(i));
      dapplets.push_back(std::make_unique<Dapplet>(net, names.back()));
      stores.push_back(std::make_unique<StateStore>());
      CalendarBook::populate(*stores.back(), rng, 40, busyProb);
      SessionAgent::Config cfg;
      cfg.store = stores.back().get();
      agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), cfg));
      apps::registerCalendarApp(*agents.back());
      directory.put(names.back(), agents.back()->controlRef());
    }
    director = std::make_unique<Dapplet>(net, "director");
    directorAgent = std::make_unique<SessionAgent>(*director);
    apps::registerCalendarApp(*directorAgent);
    directory.put("director", directorAgent->controlRef());
  }

  ~CalendarRig() {
    agents.clear();
    directorAgent.reset();
    director->stop();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::string> names;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  std::unique_ptr<Dapplet> director;
  std::unique_ptr<SessionAgent> directorAgent;
};

TEST(CalendarBookTest, MaskAndBusyBookkeeping) {
  StateStore store;
  EXPECT_TRUE(CalendarBook::isFree(store, 5));
  CalendarBook::markBusy(store, 5);
  CalendarBook::markBusy(store, 7);
  EXPECT_FALSE(CalendarBook::isFree(store, 5));
  EXPECT_TRUE(CalendarBook::isFree(store, 6));
  const apps::DayMask mask = CalendarBook::freeMask(store, 4, 5);
  // Window [4,9): busy at 5 (bit 1) and 7 (bit 3).
  EXPECT_EQ(mask, 0b10101u);
  EXPECT_EQ(CalendarBook::busyCount(store), 2u);
}

TEST(CalendarBookTest, PopulateIsDeterministic) {
  StateStore s1;
  StateStore s2;
  Rng r1(5);
  Rng r2(5);
  CalendarBook::populate(s1, r1, 30, 0.4);
  CalendarBook::populate(s2, r2, 30, 0.4);
  EXPECT_EQ(CalendarBook::freeMask(s1, 0, 30),
            CalendarBook::freeMask(s2, 0, 30));
}

TEST(CalendarApp, FlatSessionFindsEarliestCommonDay) {
  CalendarRig rig(5, 0.4, 901);
  const std::int64_t truth = groundTruthDay(rig.stores, 40);
  ASSERT_GE(truth, 0) << "test setup produced no common day";

  Initiator initiator(*rig.director);
  auto plan = apps::flatCalendarPlan(rig.directory, "director", rig.names,
                                     0, 20, 4);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto done = initiator.awaitCompletion(result.sessionId, seconds(20));
  auto outcome = apps::parseOutcome(done.at("director"));
  ASSERT_TRUE(outcome.scheduled);
  EXPECT_EQ(outcome.day, truth);
  for (auto& store : rig.stores) {
    EXPECT_FALSE(CalendarBook::isFree(*store, outcome.day))
        << "member failed to book the confirmed day";
  }
  initiator.terminate(result.sessionId);
}

TEST(CalendarApp, HierarchicalSessionMatchesGroundTruth) {
  CalendarRig rig(6, 0.45, 902);
  const std::int64_t truth = groundTruthDay(rig.stores, 40);
  ASSERT_GE(truth, 0);

  // Sites of 2 members each; secretaries are extra store-less dapplets.
  std::vector<std::unique_ptr<Dapplet>> secDapplets;
  std::vector<std::unique_ptr<SessionAgent>> secAgents;
  std::vector<apps::Site> sites;
  for (int s = 0; s < 3; ++s) {
    const std::string secName = "sec" + std::to_string(s);
    secDapplets.push_back(std::make_unique<Dapplet>(rig.net, secName));
    secAgents.push_back(std::make_unique<SessionAgent>(*secDapplets.back()));
    apps::registerCalendarApp(*secAgents.back());
    rig.directory.put(secName, secAgents.back()->controlRef());
    sites.push_back(apps::Site{
        secName, {rig.names[2 * s], rig.names[2 * s + 1]}});
  }

  Initiator initiator(*rig.director);
  auto plan = apps::hierCalendarPlan(rig.directory, "director", sites, 0,
                                     20, 4);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto done = initiator.awaitCompletion(result.sessionId, seconds(20));
  auto outcome = apps::parseOutcome(done.at("director"));
  ASSERT_TRUE(outcome.scheduled);
  EXPECT_EQ(outcome.day, truth);
  initiator.terminate(result.sessionId);
  secAgents.clear();
  for (auto& d : secDapplets) d->stop();
}

TEST(CalendarApp, SequentialBaselineAgreesWithSessionProtocol) {
  CalendarRig rig(4, 0.4, 903);
  const std::int64_t truth = groundTruthDay(rig.stores, 40);
  ASSERT_GE(truth, 0);

  std::vector<std::unique_ptr<apps::CalendarRpcMember>> rpc;
  std::vector<InboxRef> refs;
  for (std::size_t i = 0; i < 4; ++i) {
    rpc.push_back(std::make_unique<apps::CalendarRpcMember>(
        *rig.dapplets[i], *rig.stores[i]));
    refs.push_back(rpc.back()->ref());
  }
  apps::SequentialScheduler scheduler(*rig.director, refs);
  auto outcome = scheduler.negotiate(0, 20, 4);
  ASSERT_TRUE(outcome.scheduled);
  EXPECT_EQ(outcome.day, truth);
  // Sequential messaging: 2 messages per member per query plus confirms.
  EXPECT_GE(outcome.messages, 2 * 4);
}

TEST(CalendarApp, SecondSessionSeesFirstSessionsBooking) {
  // The paper's persistence requirement: the booked day must be busy for
  // the *next* session over the same calendars.
  CalendarRig rig(3, 0.0, 904);  // everyone free: day 0 gets booked
  Initiator initiator(*rig.director);
  auto plan = apps::flatCalendarPlan(rig.directory, "director", rig.names,
                                     0, 10, 2);
  auto r1 = initiator.establish(plan);
  ASSERT_TRUE(r1.ok);
  auto o1 = apps::parseOutcome(
      initiator.awaitCompletion(r1.sessionId, seconds(20)).at("director"));
  initiator.terminate(r1.sessionId);
  ASSERT_TRUE(o1.scheduled);
  EXPECT_EQ(o1.day, 0);

  // Allow the members to finish unlinking before re-claiming state.
  for (int i = 0; i < 200; ++i) {
    bool allClear = true;
    for (auto& agent : rig.agents) {
      allClear = allClear && agent->activeSessions().empty();
    }
    if (allClear) break;
    std::this_thread::sleep_for(milliseconds(10));
  }

  auto r2 = initiator.establish(plan);
  ASSERT_TRUE(r2.ok);
  auto o2 = apps::parseOutcome(
      initiator.awaitCompletion(r2.sessionId, seconds(20)).at("director"));
  initiator.terminate(r2.sessionId);
  ASSERT_TRUE(o2.scheduled);
  EXPECT_EQ(o2.day, 1) << "second session must skip the day booked first";
}

TEST(CalendarApp, NoCommonDayReportsUnscheduled) {
  CalendarRig rig(2, 0.0, 905);
  // Make the calendars complementary over the whole horizon.
  for (std::int64_t day = 0; day < 40; ++day) {
    CalendarBook::markBusy(*rig.stores[day % 2], day);
  }
  Initiator initiator(*rig.director);
  auto plan = apps::flatCalendarPlan(rig.directory, "director", rig.names,
                                     0, 20, 2);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto outcome = apps::parseOutcome(
      initiator.awaitCompletion(result.sessionId, seconds(20))
          .at("director"));
  EXPECT_FALSE(outcome.scheduled);
  EXPECT_EQ(outcome.rounds, 2);
  initiator.terminate(result.sessionId);
}

// ---------------------------------------------------------------------------
// Design app
// ---------------------------------------------------------------------------

TEST(DesignApp, ReplicasConvergeAndWritesAreExclusive) {
  SimNetwork net(906);
  const std::vector<std::string> names = {"d0", "d1", "d2"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  for (const auto& name : names) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name));
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back()));
    apps::registerDesignApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }

  // Oracle: per-part writer/reader counters prove token exclusion.
  constexpr std::size_t kParts = 4;
  std::vector<std::atomic<int>> partWriters(kParts);
  std::vector<std::atomic<int>> partReaders(kParts);
  std::atomic<bool> violated{false};
  apps::DesignOracle oracle;
  oracle.onWriteStart = [&](std::size_t p) {
    if (++partWriters[p] != 1 || partReaders[p] != 0) violated = true;
  };
  oracle.onWriteEnd = [&](std::size_t p) { --partWriters[p]; };
  oracle.onReadStart = [&](std::size_t p) {
    ++partReaders[p];
    if (partWriters[p] != 0) violated = true;
  };
  oracle.onReadEnd = [&](std::size_t p) { --partReaders[p]; };
  apps::setDesignOracle(oracle);

  Dapplet lead(net, "lead");
  Initiator initiator(lead);
  auto plan = apps::designPlan(directory, names, kParts, 25, 40, 907);
  plan.phaseTimeout = seconds(20);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto done = initiator.awaitCompletion(result.sessionId, seconds(60));
  apps::clearDesignOracle();

  EXPECT_FALSE(violated) << "token read/write protocol violated";
  std::set<std::int64_t> checksums;
  std::int64_t totalWrites = 0;
  for (const auto& [member, value] : done) {
    auto outcome = apps::parseDesignOutcome(value);
    checksums.insert(outcome.finalChecksum);
    totalWrites += outcome.writes;
    EXPECT_EQ(outcome.reads + outcome.writes, 25);
  }
  EXPECT_EQ(checksums.size(), 1u) << "replicas diverged";
  EXPECT_GT(totalWrites, 0);
  initiator.terminate(result.sessionId);
  lead.stop();
  agents.clear();
  for (auto& d : dapplets) d->stop();
}

// ---------------------------------------------------------------------------
// Card game
// ---------------------------------------------------------------------------

class CardGameSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CardGameSeeds, ProducesAWinnerEveryoneAgreesOn) {
  SimNetwork net(GetParam());
  const std::vector<std::string> names = {"a", "b", "c", "d"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  for (const auto& name : names) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name));
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back()));
    apps::registerCardGameApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }
  Dapplet table(net, "table");
  Initiator initiator(table);
  auto plan = apps::cardGamePlan(directory, names, 2000, GetParam());
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto done = initiator.awaitCompletion(result.sessionId, seconds(60));

  int winners = 0;
  std::set<std::int64_t> announced;
  for (const auto& [player, value] : done) {
    auto outcome = apps::parseGameOutcome(value);
    if (outcome.won) ++winners;
    if (outcome.winner >= 0) announced.insert(outcome.winner);
  }
  EXPECT_EQ(winners, 1) << "exactly one player must win";
  EXPECT_EQ(announced.size(), 1u) << "players disagree about the winner";
  initiator.terminate(result.sessionId);
  table.stop();
  agents.clear();
  for (auto& d : dapplets) d->stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CardGameSeeds,
                         ::testing::Values(11, 23, 47, 85));

}  // namespace
}  // namespace dapple
