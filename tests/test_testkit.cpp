// dapple::testkit: the virtual clock itself, plus fault-injection
// edge cases the fuzzer's oracles rely on — flow conservation under
// combined kill/killHost/partition sequences, and `Inbox::receiveFor`
// racing a concurrent close.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dapple/core/dapplet.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/testkit/seed.hpp"
#include "dapple/testkit/virtual_clock.hpp"
#include "dapple/util/sync_queue.hpp"

namespace dapple {
namespace {

using testkit::VirtualClock;

// ---------------------------------------------------------------------------
// VirtualClock semantics
// ---------------------------------------------------------------------------

TEST(VirtualClock, ManualAdvanceMovesTimeAndFiresAlarms) {
  VirtualClock::Options opts;
  opts.autoAdvance = false;
  VirtualClock clock(opts);
  const TimePoint start = clock.now();

  std::atomic<int> fired{0};
  clock.after(milliseconds(10), [&] { fired = 1; });
  clock.after(milliseconds(30), [&] { fired = 2; });

  clock.advanceBy(milliseconds(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(clock.now() - start, milliseconds(5));

  clock.advanceBy(milliseconds(10));
  EXPECT_EQ(fired, 1);

  clock.advanceBy(milliseconds(100));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(clock.now() - start, milliseconds(115));
}

TEST(VirtualClock, SleepingWorkerDrivesAutoAdvance) {
  VirtualClock clock;
  const TimePoint start = clock.now();
  std::atomic<bool> woke{false};
  clock.announceWorker();
  std::thread worker([&] {
    ClockSource::WorkerScope scope(clock);
    clock.sleepFor(seconds(3600));  // an hour of virtual time, instantly
    woke = true;
  });
  worker.join();
  EXPECT_TRUE(woke);
  EXPECT_GE(clock.now() - start, seconds(3600));
}

TEST(VirtualClock, RoutedNotifyWakesClockedWaitBeforeDeadline) {
  VirtualClock clock;
  std::mutex m;
  std::condition_variable cv;
  bool ready = false;
  std::atomic<bool> satisfied{false};

  // Announce first: the alarm below must not fire before the worker parks,
  // and the worker's 5-minute deadline must not be jumped to before the
  // alarm is registered.  With the worker announced, time is frozen until
  // it registers and parks; the alarm is then the earliest event.
  clock.announceWorker();
  clock.after(milliseconds(10), [&] {
    {
      std::scoped_lock lock(m);
      ready = true;
    }
    clock.notifyAll(cv);
  });
  std::thread worker([&] {
    ClockSource::WorkerScope scope(clock);
    std::unique_lock lock(m);
    satisfied = clock.waitFor(lock, cv, seconds(300), [&] { return ready; });
  });
  worker.join();
  EXPECT_TRUE(satisfied) << "wait must return via the predicate, not the "
                            "5-minute virtual deadline";
}

TEST(VirtualClock, GuestWaitsParkButNeverBlockAdvancement) {
  VirtualClock clock;
  // The test thread is a guest (never registered): its timed wait must be
  // satisfied by virtual-time advancement driven by the scheduler alone.
  std::mutex m;
  std::condition_variable cv;
  std::unique_lock lock(m);
  const TimePoint start = clock.now();
  const bool pred = clock.waitFor(lock, cv, seconds(30), [] { return false; });
  EXPECT_FALSE(pred);
  EXPECT_GE(clock.now() - start, seconds(30));
}

TEST(VirtualClock, SyncQueuePopForTimesOutInVirtualTime) {
  VirtualClock clock;
  SyncQueue<int> q;
  q.setClockSource(&clock);
  const TimePoint start = clock.now();
  EXPECT_FALSE(q.popFor(seconds(120)).has_value());
  EXPECT_GE(clock.now() - start, seconds(120));

  q.push(7);
  const auto got = q.popFor(seconds(120));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

// ---------------------------------------------------------------------------
// Whole-stack virtual time
// ---------------------------------------------------------------------------

TEST(VirtualClock, DappletRoundTripRunsInVirtualTime) {
  VirtualClock clock;
  SimNetwork::Options netOpts;
  netOpts.clock = &clock;
  SimNetwork net(42, netOpts);
  net.setDefaultLink(LinkParams{milliseconds(100), microseconds(0), 0.0, 0.0});

  DappletConfig cfg;
  cfg.clock = &clock;
  Dapplet a(net, "a", cfg);
  Dapplet b(net, "b", cfg);
  Inbox& in = b.createInbox("in");
  Outbox& out = a.createOutbox();
  out.add(in.ref());

  const Stopwatch wall;
  const TimePoint start = clock.now();
  out.send(DataMessage("ping"));
  EXPECT_EQ(in.receiveAs<DataMessage>(seconds(10)).kind(), "ping");
  // 100ms of virtual link delay crossed, in (much) less than 100ms of wall
  // time: the clock jumped instead of sleeping.
  EXPECT_GE(clock.now() - start, milliseconds(100));
  EXPECT_LT(wall.elapsed(), milliseconds(100));
  a.stop();
  b.stop();
}

TEST(VirtualClock, RetransmitsBridgeLossWithoutWallClockSleeps) {
  const std::uint64_t seed = testkit::testSeed(4242);
  DAPPLE_SEED_TRACE(seed);
  VirtualClock clock;
  SimNetwork::Options netOpts;
  netOpts.clock = &clock;
  SimNetwork net(seed, netOpts);
  net.setDefaultLink(
      LinkParams{microseconds(300), microseconds(500), 0.25, 0.0});

  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.deliveryTimeout = seconds(10);
  Dapplet a(net, "a", cfg);
  Dapplet b(net, "b", cfg);
  Inbox& in = b.createInbox("in");
  Outbox& out = a.createOutbox();
  out.add(in.ref());

  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    DataMessage m("n");
    m.set("i", Value(static_cast<long long>(i)));
    out.send(m);
  }
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(in.receiveAs<DataMessage>(seconds(30)).get("i").asInt(), i);
  }
  a.stop();
  b.stop();
}

// ---------------------------------------------------------------------------
// Satellite: flow conservation under combined fault primitives
// ---------------------------------------------------------------------------

TEST(SimFaults, FlowConservationUnderKillKillHostAndPartition) {
  const std::uint64_t seed = testkit::testSeed(97);
  DAPPLE_SEED_TRACE(seed);
  VirtualClock clock;
  SimNetwork::Options netOpts;
  netOpts.clock = &clock;
  SimNetwork net(seed, netOpts);
  net.setDefaultLink(
      LinkParams{microseconds(200), microseconds(400), 0.10, 0.05});

  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(10);
  cfg.reliable.deliveryTimeout = milliseconds(300);

  constexpr std::size_t kNodes = 4;
  std::vector<std::unique_ptr<Dapplet>> nodes;
  std::vector<Inbox*> inboxes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    cfg.host = static_cast<std::uint32_t>(i + 1);
    nodes.push_back(std::make_unique<Dapplet>(
        net, "k" + std::to_string(i), cfg));
    inboxes.push_back(&nodes.back()->createInbox("in"));
  }
  std::vector<Outbox*> outs;  // 0 -> everyone else
  for (std::size_t j = 1; j < kNodes; ++j) {
    Outbox& out = nodes[0]->createOutbox();
    out.add(inboxes[j]->ref());
    outs.push_back(&out);
  }

  const auto blast = [&] {
    for (int i = 0; i < 10; ++i) {
      for (Outbox* out : outs) {
        try {
          out->send(DataMessage("blast"));
        } catch (const Error&) {
          // dead streams are exactly what this test produces
        }
      }
      clock.sleepFor(milliseconds(5));
    }
  };

  blast();
  ASSERT_TRUE(net.kill(nodes[1]->address()));
  blast();
  net.setPartition(1, 3, true);
  blast();
  EXPECT_GE(net.killHost(3), 1u);
  blast();
  net.setPartition(1, 3, false);
  blast();

  // Let retransmissions and timeouts run dry, then check the identity the
  // fuzzer's oracle depends on (documented at sim.hpp): every datagram is
  // accounted for even with kills, a killed host, and a partition that
  // opened and healed mid-traffic.
  for (std::size_t i = 0; i < kNodes; ++i) nodes[i]->stop();
  ASSERT_TRUE(net.awaitQuiescent(seconds(30)));
  const obs::MetricsSnapshot sim = net.metrics();
  EXPECT_EQ(sim.counters.at("sim.delivered") +
                sim.counters.at("sim.undeliverable"),
            sim.counters.at("sim.sent") - sim.counters.at("sim.dropped") +
                sim.counters.at("sim.duplicated"));
  EXPECT_GT(sim.counters.at("sim.undeliverable"), 0u)
      << "kill/killHost must strand some datagrams";
}

// ---------------------------------------------------------------------------
// Satellite: receiveFor racing a concurrent close
// ---------------------------------------------------------------------------

TEST(InboxClose, ReceiveForRacingCloseNeverHangsOrCrashes) {
  // A blocked receiveFor whose inbox is destroyed underneath it must either
  // return a delivery, return nullopt, or throw ShutdownError — promptly,
  // never a hang or a crash.  Repeat the race many times; under virtual
  // time each iteration costs no wall-clock sleeps.
  for (int iteration = 0; iteration < 25; ++iteration) {
    VirtualClock clock;
    SimNetwork::Options netOpts;
    netOpts.clock = &clock;
    SimNetwork net(7000 + static_cast<std::uint64_t>(iteration), netOpts);
    DappletConfig cfg;
    cfg.clock = &clock;
    Dapplet d(net, "r", cfg);
    Inbox& in = d.createInbox("in");

    std::atomic<int> outcome{-1};  // 0 nullopt, 1 delivery, 2 shutdown
    clock.announceWorker();
    std::thread receiver([&] {
      ClockSource::WorkerScope scope(clock);
      try {
        outcome = in.receiveFor(seconds(60)).has_value() ? 1 : 0;
      } catch (const ShutdownError&) {
        outcome = 2;
      }
    });
    // Vary the interleaving: sometimes close before the receiver even
    // parks, sometimes after it is deep in the timed wait.
    if (iteration % 3 != 0) {
      clock.settle(seconds(5));
      clock.sleepFor(milliseconds(iteration));
    }
    d.destroyInbox(in);
    receiver.join();
    EXPECT_NE(outcome, -1);
    EXPECT_TRUE(outcome == 0 || outcome == 2)
        << "nothing was sent, so the receiver saw outcome " << outcome;
    d.stop();
  }
}

}  // namespace
}  // namespace dapple
