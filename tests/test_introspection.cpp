// Tests for dapplet introspection (Dapplet::describe) and port lifecycle
// edge cases: destroying and recreating named ports, queue depths, and
// reporting across a live session of traffic.
#include <gtest/gtest.h>

#include <thread>

#include "dapple/core/dapplet.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"

namespace dapple {
namespace {

const Value* findPort(const Value& list, const std::string& name) {
  for (const Value& entry : list.asList()) {
    if (entry.at("name").asString() == name) return &entry;
  }
  return nullptr;
}

TEST(Introspection, DescribeReportsPortsAndStats) {
  SimNetwork net(51);
  Dapplet a(net, "alpha");
  Dapplet b(net, "beta");
  Inbox& in = b.createInbox("work");
  b.createInbox("spare");
  Outbox& out = a.createOutbox("feeder");
  out.add(in.ref());

  for (int i = 0; i < 3; ++i) out.send(DataMessage("m"));
  ASSERT_TRUE(a.flush(seconds(5)));
  for (int i = 0; i < 100 && in.size() < 3; ++i) {
    std::this_thread::sleep_for(milliseconds(5));
  }

  const Value aInfo = a.describe();
  EXPECT_EQ(aInfo.at("name").asString(), "alpha");
  EXPECT_EQ(aInfo.at("address").asString(), a.address().toString());
  EXPECT_EQ(aInfo.at("stats").at("sent").asInt(), 3);
  EXPECT_FALSE(aInfo.at("stopped").asBool());
  const Value* feeder = findPort(aInfo.at("outboxes"), "feeder");
  ASSERT_NE(feeder, nullptr);
  EXPECT_EQ(feeder->at("fanout").asInt(), 1);

  const Value bInfo = b.describe();
  EXPECT_EQ(bInfo.at("stats").at("delivered").asInt(), 3);
  const Value* work = findPort(bInfo.at("inboxes"), "work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->at("queued").asInt(), 3);
  EXPECT_FALSE(work->at("closed").asBool());
  ASSERT_NE(findPort(bInfo.at("inboxes"), "spare"), nullptr);

  // The description itself serializes — it can travel as a message.
  const Value round = Value::fromWire(bInfo.toWire());
  EXPECT_TRUE(round == bInfo);

  a.stop();
  b.stop();
}

TEST(Introspection, DescribeAfterStop) {
  SimNetwork net(52);
  Dapplet d(net, "gone");
  d.createInbox("x");
  d.stop();
  const Value info = d.describe();
  EXPECT_TRUE(info.at("stopped").asBool());
  EXPECT_TRUE(findPort(info.at("inboxes"), "x")->at("closed").asBool());
}

TEST(PortLifecycle, NamedInboxCanBeRecreatedAfterDestroy) {
  SimNetwork net(53);
  Dapplet d(net, "recycler");
  Inbox& first = d.createInbox("slot");
  const std::uint32_t firstId = first.localId();
  d.destroyInbox("slot");
  // The name is free again; the new inbox has a fresh id.
  Inbox& second = d.createInbox("slot");
  EXPECT_NE(second.localId(), firstId);
  EXPECT_EQ(&d.inbox("slot"), &second);
  d.stop();
}

TEST(PortLifecycle, NamedOutboxCanBeRecreatedAfterDestroy) {
  SimNetwork net(54);
  Dapplet d(net, "recycler");
  d.createOutbox("pipe");
  d.destroyOutbox("pipe");
  EXPECT_FALSE(d.hasOutbox("pipe"));
  Outbox& fresh = d.createOutbox("pipe");
  EXPECT_EQ(&d.outbox("pipe"), &fresh);
  d.stop();
}

TEST(PortLifecycle, DestroyUnknownNamesThrow) {
  SimNetwork net(55);
  Dapplet d(net, "strict");
  EXPECT_THROW(d.destroyInbox("nope"), AddressError);
  EXPECT_THROW(d.destroyOutbox("nope"), AddressError);
  d.stop();
}

TEST(PortLifecycle, MessagesToDestroyedNamedInboxDropAfterRecreationUsesNewRef) {
  // A peer holding a stale numeric ref to a destroyed inbox must not reach
  // the recreated one; a peer using the *name* reaches the new inbox.
  SimNetwork net(56);
  Dapplet a(net, "a");
  Dapplet b(net, "b");
  Inbox& old = b.createInbox("mailbox");
  const InboxRef staleRef = old.ref();
  b.destroyInbox("mailbox");
  Inbox& fresh = b.createInbox("mailbox");

  Outbox& stale = a.createOutbox();
  stale.add(staleRef);  // numeric id of the dead inbox
  stale.send(DataMessage("to-the-dead"));

  Outbox& byName = a.createOutbox();
  byName.add(InboxRef{b.address(), 0, "mailbox"});
  byName.send(DataMessage("to-the-living"));

  EXPECT_EQ(fresh.receiveAs<DataMessage>(seconds(5)).kind(), "to-the-living");
  EXPECT_TRUE(fresh.isEmpty());
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace dapple
