// Tests for the clock services: vector clocks and the paper's timestamp
// conflict resolution (Ricart–Agrawala distributed mutex).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "dapple/net/sim.hpp"
#include "dapple/services/clocks/dist_mutex.hpp"
#include "dapple/services/clocks/vector_clock.hpp"

namespace dapple {
namespace {

// ---------------------------------------------------------------------------
// VectorClock
// ---------------------------------------------------------------------------

TEST(VectorClock, TickAndAt) {
  VectorClock vc;
  EXPECT_EQ(vc.at("a"), 0u);
  vc.tick("a");
  vc.tick("a");
  vc.tick("b");
  EXPECT_EQ(vc.at("a"), 2u);
  EXPECT_EQ(vc.at("b"), 1u);
}

TEST(VectorClock, CompareOrders) {
  VectorClock a;
  a.tick("p");
  VectorClock b = a;
  b.tick("p");
  EXPECT_EQ(a.compare(b), VectorClock::Order::kBefore);
  EXPECT_EQ(b.compare(a), VectorClock::Order::kAfter);
  EXPECT_EQ(a.compare(a), VectorClock::Order::kEqual);
  EXPECT_TRUE(a.happenedBefore(b));
}

TEST(VectorClock, ConcurrentEvents) {
  VectorClock a;
  a.tick("p");
  VectorClock b;
  b.tick("q");
  EXPECT_EQ(a.compare(b), VectorClock::Order::kConcurrent);
  EXPECT_TRUE(a.concurrentWith(b));
}

TEST(VectorClock, ObserveCreatesHappensBefore) {
  VectorClock sender;
  sender.tick("p");
  VectorClock receiver;
  receiver.tick("q");
  VectorClock beforeReceive = receiver;
  receiver.observe(sender, "q");
  EXPECT_TRUE(sender.happenedBefore(receiver));
  EXPECT_TRUE(beforeReceive.happenedBefore(receiver));
}

TEST(VectorClock, MissingComponentsAreZero) {
  VectorClock a;
  a.tick("p");
  a.tick("q");
  VectorClock b;
  b.tick("p");
  EXPECT_EQ(b.compare(a), VectorClock::Order::kBefore);
}

TEST(VectorClock, ValueRoundTrip) {
  VectorClock vc;
  vc.tick("x");
  vc.tick("x");
  vc.tick("y");
  VectorClock back = VectorClock::fromValue(
      Value::fromWire(vc.toValue().toWire()));
  EXPECT_TRUE(vc == back);
}

// ---------------------------------------------------------------------------
// LamportStamp ordering (the paper's conflict-resolution rule)
// ---------------------------------------------------------------------------

TEST(LamportStamp, EarlierTimestampWinsTiesToLowerId) {
  EXPECT_LT((LamportStamp{1, 9}), (LamportStamp{2, 0}));  // time dominates
  EXPECT_LT((LamportStamp{5, 1}), (LamportStamp{5, 2}));  // tie -> lower id
  EXPECT_EQ((LamportStamp{5, 1}), (LamportStamp{5, 1}));
}

// ---------------------------------------------------------------------------
// DistributedMutex (Ricart–Agrawala)
// ---------------------------------------------------------------------------

struct MutexRig {
  explicit MutexRig(std::size_t n) : net(66) {
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "mx" + std::to_string(i)));
      mutexes.push_back(
          std::make_unique<DistributedMutex>(*dapplets.back(), "cs"));
    }
    std::vector<InboxRef> refs;
    for (auto& m : mutexes) refs.push_back(m->ref());
    for (std::size_t i = 0; i < n; ++i) mutexes[i]->attach(refs, i);
  }

  ~MutexRig() {
    mutexes.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<DistributedMutex>> mutexes;
};

TEST(DistributedMutex, SingleMemberAcquiresImmediately) {
  MutexRig rig(1);
  rig.mutexes[0]->acquire(seconds(2));
  EXPECT_TRUE(rig.mutexes[0]->held());
  rig.mutexes[0]->release();
  EXPECT_FALSE(rig.mutexes[0]->held());
}

TEST(DistributedMutex, MutualExclusionUnderContention) {
  constexpr std::size_t kMembers = 4;
  constexpr int kRounds = 15;
  MutexRig rig(kMembers);
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::atomic<int> totalEntries{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kMembers; ++i) {
    threads.emplace_back([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        rig.mutexes[i]->acquire(seconds(30));
        if (++inside != 1) violated = true;
        ++totalEntries;
        std::this_thread::sleep_for(microseconds(200));
        --inside;
        rig.mutexes[i]->release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated) << "two members were in the CS simultaneously";
  EXPECT_EQ(totalEntries.load(), static_cast<int>(kMembers * kRounds));
}

TEST(DistributedMutex, EveryMemberEventuallyEnters) {
  // No starvation: with timestamp ordering every request is eventually
  // served (paper: "all requests will be satisfied").
  constexpr std::size_t kMembers = 3;
  MutexRig rig(kMembers);
  std::vector<std::atomic<int>> entries(kMembers);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kMembers; ++i) {
    threads.emplace_back([&, i] {
      for (int r = 0; r < 10; ++r) {
        rig.mutexes[i]->acquire(seconds(30));
        ++entries[i];
        rig.mutexes[i]->release();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kMembers; ++i) {
    EXPECT_EQ(entries[i].load(), 10) << "member " << i << " starved";
  }
}

TEST(DistributedMutex, ReleaseWithoutAcquireThrows) {
  MutexRig rig(2);
  EXPECT_THROW(rig.mutexes[0]->release(), SessionError);
}

TEST(DistributedMutex, NotRecursive) {
  MutexRig rig(1);
  rig.mutexes[0]->acquire(seconds(2));
  EXPECT_THROW(rig.mutexes[0]->acquire(seconds(1)), SessionError);
  rig.mutexes[0]->release();
}

TEST(DistributedMutex, DeferralStatsGrowUnderContention) {
  MutexRig rig(2);
  std::thread other([&] {
    for (int r = 0; r < 10; ++r) {
      rig.mutexes[1]->acquire(seconds(30));
      std::this_thread::sleep_for(microseconds(500));
      rig.mutexes[1]->release();
    }
  });
  for (int r = 0; r < 10; ++r) {
    rig.mutexes[0]->acquire(seconds(30));
    std::this_thread::sleep_for(microseconds(500));
    rig.mutexes[0]->release();
  }
  other.join();
  const auto total = rig.mutexes[0]->stats().requestsDeferred +
                     rig.mutexes[1]->stats().requestsDeferred;
  EXPECT_GT(total, 0u) << "contention should produce deferrals";
  EXPECT_GT(rig.mutexes[0]->stats().messages, 0u);
}

}  // namespace
}  // namespace dapple
