// Tests for the reliable ordering layer: FIFO delivery under loss, jitter
// and duplication; delivery-timeout exceptions; flushing; stream isolation.
#include <gtest/gtest.h>

#include <condition_variable>
#include <map>
#include <mutex>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/reliable/reliable.hpp"
#include "dapple/util/error.hpp"

namespace dapple {
namespace {

struct OrderedSink {
  std::mutex mutex;
  std::condition_variable cv;
  // stream id -> payloads in delivery order
  std::map<std::uint64_t, std::vector<std::string>> streams;

  ReliableEndpoint::DeliverFn fn() {
    return [this](const NodeAddress&, std::uint64_t streamId,
                  std::string payload) {
      std::scoped_lock lock(mutex);
      streams[streamId].push_back(std::move(payload));
      cv.notify_all();
    };
  }

  bool waitFor(std::uint64_t streamId, std::size_t n, Duration timeout) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, timeout,
                       [&] { return streams[streamId].size() >= n; });
  }

  std::vector<std::string> get(std::uint64_t streamId) {
    std::scoped_lock lock(mutex);
    return streams[streamId];
  }
};

ReliableConfig fastConfig() {
  ReliableConfig cfg;
  cfg.tickInterval = milliseconds(2);
  cfg.rto = milliseconds(10);
  cfg.maxRto = milliseconds(80);
  cfg.deliveryTimeout = seconds(2);
  return cfg;
}

TEST(Reliable, InOrderDeliveryOnCleanLink) {
  SimNetwork net(1);
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  for (int i = 0; i < 100; ++i) {
    a.send(b.address(), 7, std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(7, 100, seconds(5)));
  const auto got = sink.get(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], std::to_string(i));
  EXPECT_TRUE(a.flush(seconds(2)));
}

/// The paper's key guarantee: "messages are delivered in the order they
/// were sent" even though the network below loses, delays, and duplicates.
class ReliableUnderAdversity
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(ReliableUnderAdversity, FifoPreservedAndComplete) {
  const auto [loss, dup, jitterUs] = GetParam();
  SimNetwork net(1234);
  net.setDefaultLink(LinkParams{microseconds(50), microseconds(jitterUs),
                                loss, dup});
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());

  constexpr int kCount = 150;
  for (int i = 0; i < kCount; ++i) {
    a.send(b.address(), 1, std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, kCount, seconds(20)))
      << "only " << sink.get(1).size() << " of " << kCount << " arrived";
  const auto got = sink.get(1);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount))
      << "duplicates leaked through";
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], std::to_string(i)) << "order violated at " << i;
  }
  EXPECT_TRUE(a.flush(seconds(10)));
}

INSTANTIATE_TEST_SUITE_P(
    LossDupJitter, ReliableUnderAdversity,
    ::testing::Values(std::make_tuple(0.0, 0.0, 0),
                      std::make_tuple(0.01, 0.0, 500),
                      std::make_tuple(0.05, 0.0, 1000),
                      std::make_tuple(0.10, 0.0, 2000),
                      std::make_tuple(0.0, 0.2, 1000),
                      std::make_tuple(0.05, 0.1, 2000),
                      std::make_tuple(0.20, 0.2, 3000)));

TEST(Reliable, StreamsAreIndependentFifos) {
  SimNetwork net(2);
  net.setDefaultLink(
      LinkParams{microseconds(100), microseconds(1000), 0.02, 0.0});
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  for (int i = 0; i < 50; ++i) {
    a.send(b.address(), 1, "s1-" + std::to_string(i));
    a.send(b.address(), 2, "s2-" + std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, 50, seconds(10)));
  ASSERT_TRUE(sink.waitFor(2, 50, seconds(10)));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sink.get(1)[i], "s1-" + std::to_string(i));
    EXPECT_EQ(sink.get(2)[i], "s2-" + std::to_string(i));
  }
}

TEST(Reliable, RetransmitsAreCounted) {
  SimNetwork net(3);
  net.setDefaultLink(LinkParams{microseconds(0), microseconds(0), 0.3, 0.0});
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  for (int i = 0; i < 50; ++i) a.send(b.address(), 1, "x");
  ASSERT_TRUE(sink.waitFor(1, 50, seconds(10)));
  EXPECT_GT(a.stats().retransmits, 0u);
  EXPECT_GT(b.stats().acksSent, 0u);
}

TEST(Reliable, DeliveryTimeoutFailsStreamAndThrowsOnNextSend) {
  SimNetwork net(4);
  auto rawA = net.open();
  const NodeAddress aAddr = rawA->address();
  ReliableConfig cfg = fastConfig();
  cfg.deliveryTimeout = milliseconds(150);
  ReliableEndpoint a(std::move(rawA), cfg);

  // Destination doesn't exist: frames vanish, the timeout must fire.
  std::mutex mutex;
  std::condition_variable cv;
  bool failed = false;
  std::string reason;
  a.setOnFailure([&](const NodeAddress&, std::uint64_t,
                     const std::string& why) {
    std::scoped_lock lock(mutex);
    failed = true;
    reason = why;
    cv.notify_all();
  });
  const NodeAddress ghost{99, 99};
  a.send(ghost, 5, "into the void");
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, seconds(5), [&] { return failed; }));
  }
  EXPECT_NE(reason.find("timeout"), std::string::npos);
  EXPECT_THROW(a.send(ghost, 5, "again"), DeliveryError);
  // Other streams to the same node are unaffected.
  EXPECT_NO_THROW(a.send(ghost, 6, "different stream"));
  // resetStream clears the failure.
  a.resetStream(ghost, 5);
  EXPECT_NO_THROW(a.send(ghost, 5, "after reset"));
  (void)aAddr;
}

TEST(Reliable, FlushTimesOutWhenPeerUnreachable) {
  SimNetwork net(5);
  ReliableEndpoint a(net.open(), fastConfig());
  a.send(NodeAddress{50, 50}, 1, "unreachable");
  EXPECT_FALSE(a.flush(milliseconds(100)));
}

TEST(Reliable, SendAfterCloseThrows) {
  SimNetwork net(6);
  ReliableEndpoint a(net.open(), fastConfig());
  a.close();
  EXPECT_THROW(a.send(NodeAddress{1, 1}, 1, "x"), ShutdownError);
}

TEST(Reliable, LargePayloadSurvives) {
  SimNetwork net(7);
  net.setDefaultLink(LinkParams{microseconds(10), microseconds(100), 0.05,
                                0.0});
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  std::string big(30000, 'q');
  big += "END";
  a.send(b.address(), 1, big);
  ASSERT_TRUE(sink.waitFor(1, 1, seconds(10)));
  EXPECT_EQ(sink.get(1)[0], big);
}

TEST(Reliable, DuplicatesOnCleanRetransmitPathAreDropped) {
  // Force retransmits by delaying ACK-carrying reverse traffic heavily.
  SimNetwork net(8);
  net.setDefaultLink(
      LinkParams{milliseconds(30), microseconds(0), 0.0, 0.0});
  ReliableConfig cfg = fastConfig();
  cfg.rto = milliseconds(5);  // far below RTT: every frame retransmits
  ReliableEndpoint a(net.open(), cfg);
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  for (int i = 0; i < 20; ++i) a.send(b.address(), 1, std::to_string(i));
  ASSERT_TRUE(sink.waitFor(1, 20, seconds(10)));
  std::this_thread::sleep_for(milliseconds(100));  // late retransmits land
  EXPECT_EQ(sink.get(1).size(), 20u);
  EXPECT_GT(b.stats().duplicates, 0u);
}

}  // namespace
}  // namespace dapple
