// Tests for the reliable ordering layer: FIFO delivery under loss, jitter
// and duplication; delivery-timeout exceptions; flushing; stream isolation;
// ack coalescing (delay/threshold flushes, dup-ack suppression).
#include <gtest/gtest.h>

#include <condition_variable>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/reliable/reliable.hpp"
#include "dapple/testkit/virtual_clock.hpp"
#include "dapple/util/error.hpp"

namespace dapple {
namespace {

struct OrderedSink {
  std::mutex mutex;
  std::condition_variable cv;
  // stream id -> payloads in delivery order
  std::map<std::uint64_t, std::vector<std::string>> streams;

  ReliableEndpoint::DeliverFn fn() {
    return [this](const NodeAddress&, std::uint64_t streamId,
                  std::string_view payload) {
      std::scoped_lock lock(mutex);
      streams[streamId].emplace_back(payload);  // view dies with the call
      cv.notify_all();
    };
  }

  bool waitFor(std::uint64_t streamId, std::size_t n, Duration timeout) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, timeout,
                       [&] { return streams[streamId].size() >= n; });
  }

  std::vector<std::string> get(std::uint64_t streamId) {
    std::scoped_lock lock(mutex);
    return streams[streamId];
  }
};

ReliableConfig fastConfig() {
  ReliableConfig cfg;
  cfg.tickInterval = milliseconds(2);
  cfg.rto = milliseconds(10);
  cfg.maxRto = milliseconds(80);
  cfg.deliveryTimeout = seconds(2);
  return cfg;
}

TEST(Reliable, InOrderDeliveryOnCleanLink) {
  SimNetwork net(1);
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  for (int i = 0; i < 100; ++i) {
    a.send(b.address(), 7, std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(7, 100, seconds(5)));
  const auto got = sink.get(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], std::to_string(i));
  EXPECT_TRUE(a.flush(seconds(2)));
}

/// The paper's key guarantee: "messages are delivered in the order they
/// were sent" even though the network below loses, delays, and duplicates.
class ReliableUnderAdversity
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(ReliableUnderAdversity, FifoPreservedAndComplete) {
  const auto [loss, dup, jitterUs] = GetParam();
  SimNetwork net(1234);
  net.setDefaultLink(LinkParams{microseconds(50), microseconds(jitterUs),
                                loss, dup});
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());

  constexpr int kCount = 150;
  for (int i = 0; i < kCount; ++i) {
    a.send(b.address(), 1, std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, kCount, seconds(20)))
      << "only " << sink.get(1).size() << " of " << kCount << " arrived";
  const auto got = sink.get(1);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount))
      << "duplicates leaked through";
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], std::to_string(i)) << "order violated at " << i;
  }
  EXPECT_TRUE(a.flush(seconds(10)));
}

INSTANTIATE_TEST_SUITE_P(
    LossDupJitter, ReliableUnderAdversity,
    ::testing::Values(std::make_tuple(0.0, 0.0, 0),
                      std::make_tuple(0.01, 0.0, 500),
                      std::make_tuple(0.05, 0.0, 1000),
                      std::make_tuple(0.10, 0.0, 2000),
                      std::make_tuple(0.0, 0.2, 1000),
                      std::make_tuple(0.05, 0.1, 2000),
                      std::make_tuple(0.20, 0.2, 3000)));

TEST(Reliable, StreamsAreIndependentFifos) {
  SimNetwork net(2);
  net.setDefaultLink(
      LinkParams{microseconds(100), microseconds(1000), 0.02, 0.0});
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  for (int i = 0; i < 50; ++i) {
    a.send(b.address(), 1, "s1-" + std::to_string(i));
    a.send(b.address(), 2, "s2-" + std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, 50, seconds(10)));
  ASSERT_TRUE(sink.waitFor(2, 50, seconds(10)));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sink.get(1)[i], "s1-" + std::to_string(i));
    EXPECT_EQ(sink.get(2)[i], "s2-" + std::to_string(i));
  }
}

TEST(Reliable, RetransmitsAreCounted) {
  SimNetwork net(3);
  net.setDefaultLink(LinkParams{microseconds(0), microseconds(0), 0.3, 0.0});
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  for (int i = 0; i < 50; ++i) a.send(b.address(), 1, "x");
  ASSERT_TRUE(sink.waitFor(1, 50, seconds(10)));
  EXPECT_GT(a.stats().retransmits, 0u);
  EXPECT_GT(b.stats().acksSent, 0u);
}

TEST(Reliable, DeliveryTimeoutFailsStreamAndThrowsOnNextSend) {
  SimNetwork net(4);
  auto rawA = net.open();
  const NodeAddress aAddr = rawA->address();
  ReliableConfig cfg = fastConfig();
  cfg.deliveryTimeout = milliseconds(150);
  ReliableEndpoint a(std::move(rawA), cfg);

  // Destination doesn't exist: frames vanish, the timeout must fire.
  std::mutex mutex;
  std::condition_variable cv;
  bool failed = false;
  std::string reason;
  a.setOnFailure([&](const NodeAddress&, std::uint64_t,
                     const std::string& why) {
    std::scoped_lock lock(mutex);
    failed = true;
    reason = why;
    cv.notify_all();
  });
  const NodeAddress ghost{99, 99};
  a.send(ghost, 5, "into the void");
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, seconds(5), [&] { return failed; }));
  }
  EXPECT_NE(reason.find("timeout"), std::string::npos);
  EXPECT_THROW(a.send(ghost, 5, "again"), DeliveryError);
  // Other streams to the same node are unaffected.
  EXPECT_NO_THROW(a.send(ghost, 6, "different stream"));
  // resetStream clears the failure.
  a.resetStream(ghost, 5);
  EXPECT_NO_THROW(a.send(ghost, 5, "after reset"));
  (void)aAddr;
}

TEST(Reliable, FlushTimesOutWhenPeerUnreachable) {
  SimNetwork net(5);
  ReliableEndpoint a(net.open(), fastConfig());
  a.send(NodeAddress{50, 50}, 1, "unreachable");
  EXPECT_FALSE(a.flush(milliseconds(100)));
}

TEST(Reliable, SendAfterCloseThrows) {
  SimNetwork net(6);
  ReliableEndpoint a(net.open(), fastConfig());
  a.close();
  EXPECT_THROW(a.send(NodeAddress{1, 1}, 1, "x"), ShutdownError);
}

TEST(Reliable, LargePayloadSurvives) {
  SimNetwork net(7);
  net.setDefaultLink(LinkParams{microseconds(10), microseconds(100), 0.05,
                                0.0});
  ReliableEndpoint a(net.open(), fastConfig());
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  std::string big(30000, 'q');
  big += "END";
  a.send(b.address(), 1, big);
  ASSERT_TRUE(sink.waitFor(1, 1, seconds(10)));
  EXPECT_EQ(sink.get(1)[0], big);
}

// ---------------------------------------------------------------------------
// Ack coalescing (virtual clock: flush scheduling is deterministic-time)
// ---------------------------------------------------------------------------

namespace {
/// Two reliable endpoints over a virtual-time SimNetwork.
struct VirtualPair {
  testkit::VirtualClock clock;
  SimNetwork net;
  ReliableEndpoint a;
  ReliableEndpoint b;

  explicit VirtualPair(std::uint64_t seed, ReliableConfig cfg,
                       LinkParams link = LinkParams{microseconds(50),
                                                    microseconds(0), 0.0,
                                                    0.0})
      : net(seed,
            [this] {
              SimNetwork::Options o;
              o.clock = &clock;
              return o;
            }()),
        a((net.setDefaultLink(link), net.open()), cfg, nullptr, &clock),
        b(net.open(), cfg, nullptr, &clock) {}

  ~VirtualPair() {
    // Endpoints must close before the clock dies (member order handles the
    // network; close explicitly so timers stop first).
    a.close();
    b.close();
  }
};
}  // namespace

TEST(ReliableAcks, CoalescingCutsAckDatagramsOnBurst) {
  ReliableConfig cfg = fastConfig();
  cfg.ackPiggyback = false;  // isolate the threshold/delay machinery
  VirtualPair pair(41, cfg);
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  // One sendMany burst: every frame shares the refcounted body and all of
  // them land in a single simulator sweep, so the flush pattern is purely
  // the threshold's (no timer interleaving to make counts flaky).
  constexpr int kCount = 64;
  const Payload body(std::string(512, 'z'));
  std::vector<OutSend> sends;
  for (int i = 0; i < kCount; ++i) {
    sends.push_back(OutSend{pair.b.address(), std::to_string(i) + ":"});
  }
  pair.a.sendMany(std::move(sends), 1, body);
  ASSERT_TRUE(sink.waitFor(1, kCount, seconds(10)));
  ASSERT_TRUE(pair.a.flush(seconds(5)));
  EXPECT_EQ(body.refCount(), 1);  // acked: all references released
  const auto got = sink.get(1);
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], std::to_string(i) + ":" + std::string(512, 'z'));
  }
  const auto stats = pair.b.stats();
  EXPECT_EQ(stats.delivered, static_cast<std::uint64_t>(kCount));
  // One ack datagram per ackEvery-sized chunk of the burst (plus at most a
  // couple of timer flushes at the tail), instead of one per frame.
  EXPECT_LT(stats.ackFramesSent, static_cast<std::uint64_t>(kCount) / 3);
  EXPECT_GT(stats.acksCoalesced, 0u);
  // Every ack block emission is justified by at least one frame arrival.
  EXPECT_LE(stats.acksSent,
            stats.delivered + stats.duplicates + stats.outOfOrderBuffered);
  // Zero-copy invariant: payload materializations track wire transmissions
  // (first sends + retransmits), not fan-out or queue depth.
  EXPECT_EQ(pair.a.stats().payloadCopies,
            pair.a.stats().dataSent + pair.a.stats().retransmits);
}

TEST(ReliableAcks, DelayedAcksNeverStallDeliveryOrFailStreams) {
  // Pathological config: the threshold never fires, so every ack waits for
  // the ackDelay timer.  Delivery must stay prompt and no stream may fail.
  ReliableConfig cfg = fastConfig();
  cfg.ackEvery = 100000;          // never threshold-flush
  cfg.ackDelay = milliseconds(5); // timer-only acks
  cfg.ackPiggyback = false;
  cfg.deliveryTimeout = seconds(2);
  VirtualPair pair(42, cfg);
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  for (int i = 0; i < 10; ++i) {
    pair.a.send(pair.b.address(), 1, std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, 10, seconds(10)));
  // Acks arrive within ackDelay + tickInterval — far inside deliveryTimeout
  // — so the sender drains and no failure fires.
  EXPECT_TRUE(pair.a.flush(seconds(5)));
  EXPECT_EQ(pair.a.stats().failures, 0u);
  const auto got = sink.get(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], std::to_string(i));
}

TEST(ReliableAcks, SackSemanticsSurviveLossReorderAndDuplication) {
  ReliableConfig cfg = fastConfig();
  cfg.deliveryTimeout = seconds(10);
  VirtualPair pair(43, cfg,
                   LinkParams{microseconds(50), microseconds(2000), 0.10,
                              0.20});
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  // Burst in one sendMany so every frame is in flight at once: the 2ms
  // jitter then guarantees reordering regardless of scheduling.
  constexpr int kCount = 150;
  std::vector<OutSend> sends;
  for (int i = 0; i < kCount; ++i) {
    sends.push_back(OutSend{pair.b.address(), std::to_string(i)});
  }
  pair.a.sendMany(std::move(sends), 1, Payload());
  ASSERT_TRUE(sink.waitFor(1, kCount, seconds(30)));
  const auto got = sink.get(1);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], std::to_string(i)) << "order violated at " << i;
  }
  EXPECT_TRUE(pair.a.flush(seconds(10)));
  const auto stats = pair.b.stats();
  // SACKed out-of-order frames were buffered, not retransmitted forever.
  EXPECT_GT(stats.outOfOrderBuffered, 0u);
  EXPECT_LE(stats.acksSent,
            stats.delivered + stats.duplicates + stats.outOfOrderBuffered);
}

TEST(ReliableAcks, DuplicateFramesDoNotTriggerAckStorm) {
  // Every datagram is duplicated by the link.  The legacy design answered
  // each dup with an immediate ack datagram; now dups fold into the
  // coalesced flush and are counted.
  ReliableConfig cfg = fastConfig();
  cfg.ackPiggyback = false;
  VirtualPair pair(44, cfg,
                   LinkParams{microseconds(50), microseconds(0), 0.0, 1.0});
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  // One burst, so originals and duplicates all arrive in one sweep and the
  // ack count reflects the threshold, not timer interleavings.
  constexpr int kCount = 40;
  std::vector<OutSend> sends;
  for (int i = 0; i < kCount; ++i) {
    sends.push_back(OutSend{pair.b.address(), std::to_string(i)});
  }
  pair.a.sendMany(std::move(sends), 1, Payload());
  ASSERT_TRUE(sink.waitFor(1, kCount, seconds(10)));
  ASSERT_TRUE(pair.a.flush(seconds(5)));
  const auto stats = pair.b.stats();
  EXPECT_EQ(stats.delivered, static_cast<std::uint64_t>(kCount));
  EXPECT_GT(stats.duplicates, 0u);
  // The ack-storm fix: every dup's re-ack was deferred, and the total ack
  // datagram count stays below the frame arrival count by a wide margin.
  EXPECT_EQ(stats.dupAcksSuppressed, stats.duplicates);
  EXPECT_LT(stats.ackFramesSent, static_cast<std::uint64_t>(kCount));
}

TEST(ReliableAcks, PiggybackedAcksRideReverseTraffic) {
  // Bidirectional chatter: with piggybacking on, ack blocks should ride the
  // reverse DATA frames, keeping standalone ack datagrams rare.  The ack
  // delay is set far beyond the test's active phase so the timer cannot
  // flush first — piggybacking is the only timely ack path (correctness
  // does not depend on it: the 500ms timer still backstops the tail).
  ReliableConfig cfg = fastConfig();
  cfg.ackPiggyback = true;
  cfg.ackDelay = milliseconds(500);
  cfg.deliveryTimeout = seconds(30);
  VirtualPair pair(45, cfg);
  OrderedSink sinkA;
  OrderedSink sinkB;
  pair.a.setDeliver(sinkA.fn());
  pair.b.setDeliver(sinkB.fn());
  constexpr int kRounds = 40;
  for (int i = 0; i < kRounds; ++i) {
    pair.a.send(pair.b.address(), 1, "ping-" + std::to_string(i));
    ASSERT_TRUE(sinkB.waitFor(1, static_cast<std::size_t>(i) + 1,
                              seconds(5)));
    pair.b.send(pair.a.address(), 2, "pong-" + std::to_string(i));
    ASSERT_TRUE(sinkA.waitFor(2, static_cast<std::size_t>(i) + 1,
                              seconds(5)));
  }
  EXPECT_TRUE(pair.a.flush(seconds(5)));
  EXPECT_TRUE(pair.b.flush(seconds(5)));
  // Every ping was acknowledged (the senders drained), yet almost every ack
  // rode a reverse DATA frame: standalone ack datagrams stay far below the
  // 2*kRounds the ack-per-frame design would have emitted.
  const auto statsA = pair.a.stats();
  const auto statsB = pair.b.stats();
  EXPECT_GT(statsA.acksSent, 0u);
  EXPECT_GT(statsB.acksSent, 0u);
  EXPECT_LT(statsA.ackFramesSent + statsB.ackFramesSent,
            static_cast<std::uint64_t>(kRounds));
}

// ---------------------------------------------------------------------------
// Adaptive transport: RTO estimation, congestion window, fast retransmit
// (virtual clock, hosts 1 and 2 so partitions can cut the link)
// ---------------------------------------------------------------------------

namespace {
/// Two reliable endpoints on DISTINCT simulated hosts over virtual time,
/// so setPartition(1, 2, ...) can cut the path between them.
struct VirtualDuo {
  testkit::VirtualClock clock;
  SimNetwork net;
  ReliableEndpoint a;
  ReliableEndpoint b;

  explicit VirtualDuo(std::uint64_t seed, ReliableConfig cfg,
                      LinkParams link = LinkParams{microseconds(50),
                                                   microseconds(0), 0.0,
                                                   0.0})
      : net(seed,
            [this] {
              SimNetwork::Options o;
              o.clock = &clock;
              return o;
            }()),
        a((net.setDefaultLink(link), net.openAt(1)), cfg, nullptr, &clock),
        b(net.openAt(2), cfg, nullptr, &clock) {}

  ~VirtualDuo() {
    a.close();
    b.close();
  }
};
}  // namespace

TEST(ReliableAdaptive, SrttConvergesToPathRttAndStopsSpuriousRetransmits) {
  // True RTT (~40ms) far above the initial RTO (15ms after normalization):
  // the estimator must bootstrap via Karn backoff retention, converge on
  // the real path RTT, and then stop retransmitting entirely.
  ReliableConfig cfg = fastConfig();
  cfg.maxRto = milliseconds(500);
  VirtualDuo pair(50, cfg,
                  LinkParams{milliseconds(20), microseconds(0), 0.0, 0.0});
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  constexpr int kWarm = 40;
  for (int i = 0; i < kWarm; ++i) {
    pair.a.send(pair.b.address(), 1, std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, kWarm, seconds(20)));
  ASSERT_TRUE(pair.a.flush(seconds(10)));

  const auto probe = pair.a.probePeer(pair.b.address());
  ASSERT_TRUE(probe.hasRtt);
  EXPECT_GT(pair.a.stats().rttSamples, 0u);
  // One-way 20ms each direction, plus up to ~4ms of ack deferral.
  EXPECT_GE(probe.srtt, milliseconds(35));
  EXPECT_LE(probe.srtt, milliseconds(80));
  EXPECT_GE(probe.rto, probe.srtt);
  EXPECT_LE(probe.rto, milliseconds(200));

  // Converged: a second burst must ride the estimated RTO without (more
  // than boundary-noise) spurious retransmissions.
  const std::uint64_t retxBefore = pair.a.stats().retransmits;
  for (int i = 0; i < 30; ++i) {
    pair.a.send(pair.b.address(), 1, "post-" + std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, kWarm + 30, seconds(20)));
  ASSERT_TRUE(pair.a.flush(seconds(10)));
  EXPECT_LE(pair.a.stats().retransmits - retxBefore, 1u);
}

TEST(ReliableAdaptive, KarnsRuleNeverSamplesRetransmittedFrames) {
  // RTO pinned (min == initial == max) far below the 60ms RTT: every frame
  // is retransmitted before its ack returns, so under Karn's rule not one
  // RTT sample may land, no matter how many acks arrive.
  ReliableConfig cfg = fastConfig();
  cfg.rto = milliseconds(15);
  cfg.minRto = milliseconds(15);
  cfg.maxRto = milliseconds(15);
  cfg.deliveryTimeout = seconds(5);
  VirtualDuo pair(51, cfg,
                  LinkParams{milliseconds(30), microseconds(0), 0.0, 0.0});
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  for (int i = 0; i < 10; ++i) {
    pair.a.send(pair.b.address(), 1, std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, 10, seconds(20)));
  ASSERT_TRUE(pair.a.flush(seconds(10)));
  EXPECT_GT(pair.a.stats().retransmits, 0u);
  EXPECT_EQ(pair.a.stats().rttSamples, 0u);
  EXPECT_FALSE(pair.a.probePeer(pair.b.address()).hasRtt);
}

TEST(ReliableAdaptive, ExponentialBackoffIsCappedAtMaxRto) {
  // One frame into a partition: retransmissions back off 25, 50, 100, 100,
  // ... ms.  Over 1.5s of dark link that is ~16 sends; an uncapped doubling
  // would manage only ~6 and a cap-less floor (no backoff) ~60.
  ReliableConfig cfg;
  cfg.tickInterval = milliseconds(2);
  cfg.rto = milliseconds(25);
  cfg.minRto = milliseconds(25);
  cfg.maxRto = milliseconds(100);
  cfg.deliveryTimeout = seconds(10);
  VirtualDuo pair(52, cfg);
  pair.net.setPartition(1, 2, true);
  pair.a.send(pair.b.address(), 1, "into the dark");
  pair.clock.sleepFor(milliseconds(1500));
  const std::uint64_t retx = pair.a.stats().retransmits;
  EXPECT_GE(retx, 10u);
  EXPECT_LE(retx, 20u);
}

TEST(ReliableAdaptive, WindowGrowsFromSlowStartAndDefersExcessFrames) {
  ReliableConfig cfg = fastConfig();
  VirtualDuo pair(53, cfg,
                  LinkParams{milliseconds(1), microseconds(0), 0.0, 0.0});
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  constexpr int kCount = 64;
  std::vector<OutSend> sends;
  for (int i = 0; i < kCount; ++i) {
    sends.push_back(OutSend{pair.b.address(), std::to_string(i)});
  }
  pair.a.sendMany(std::move(sends), 1, Payload());
  ASSERT_TRUE(sink.waitFor(1, kCount, seconds(20)));
  ASSERT_TRUE(pair.a.flush(seconds(10)));
  // 64 frames against an initial window of 4: the tail was queued, not
  // flooded onto the wire...
  EXPECT_GT(pair.a.stats().windowDeferred, 0u);
  // ...and slow start opened the window while acks streamed back.
  const auto probe = pair.a.probeStream(pair.b.address(), 1);
  ASSERT_TRUE(probe.exists);
  EXPECT_GT(probe.cwnd, 4.0);
  EXPECT_EQ(probe.inFlight, 0u);
  EXPECT_EQ(probe.queued, 0u);
  // FIFO held across the deferral boundary.
  const auto got = sink.get(1);
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[i], std::to_string(i));
  // Zero-copy invariant survives the queue: copies track transmissions.
  EXPECT_EQ(pair.a.stats().payloadCopies,
            pair.a.stats().dataSent + pair.a.stats().retransmits);
}

TEST(ReliableAdaptive, TimerExpiryCollapsesWindowAndRecoveryRegrows) {
  ReliableConfig cfg = fastConfig();
  cfg.deliveryTimeout = seconds(5);
  VirtualDuo pair(54, cfg,
                  LinkParams{milliseconds(1), microseconds(0), 0.0, 0.0});
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  // Grow the window with a clean burst first.
  std::vector<OutSend> sends;
  for (int i = 0; i < 32; ++i) {
    sends.push_back(OutSend{pair.b.address(), "warm-" + std::to_string(i)});
  }
  pair.a.sendMany(std::move(sends), 1, Payload());
  ASSERT_TRUE(sink.waitFor(1, 32, seconds(10)));
  ASSERT_TRUE(pair.a.flush(seconds(10)));
  const double grown = pair.a.probeStream(pair.b.address(), 1).cwnd;
  EXPECT_GT(grown, 4.0);
  // Cut the link: the in-flight frames' timers expire and the window must
  // collapse to 1 with ssthresh at half the flight (>= 2).
  pair.net.setPartition(1, 2, true);
  for (int i = 0; i < 4; ++i) {
    pair.a.send(pair.b.address(), 1, "dark-" + std::to_string(i));
  }
  pair.clock.sleepFor(milliseconds(300));
  const auto dark = pair.a.probeStream(pair.b.address(), 1);
  EXPECT_GT(pair.a.stats().retransmits, 0u);
  EXPECT_EQ(dark.cwnd, 1.0);
  EXPECT_GE(dark.ssthresh, 2u);
  EXPECT_LT(static_cast<double>(dark.ssthresh), grown);
  // Heal: everything still delivers (FIFO), and acks regrow the window.
  pair.net.setPartition(1, 2, false);
  ASSERT_TRUE(sink.waitFor(1, 36, seconds(20)));
  ASSERT_TRUE(pair.a.flush(seconds(10)));
  EXPECT_GE(pair.a.probeStream(pair.b.address(), 1).cwnd, 1.0);
  const auto got = sink.get(1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[32 + i], "dark-" + std::to_string(i));
  }
}

TEST(ReliableAdaptive, FastRetransmitRecoversBeforeTimer) {
  // The retransmission timer is pinned at 10s — hopeless for this test's
  // virtual horizon — so the single dropped frame can only be recovered by
  // duplicate-SACK fast retransmit.
  ReliableConfig cfg;
  cfg.tickInterval = milliseconds(2);
  cfg.rto = seconds(10);
  cfg.minRto = seconds(10);
  cfg.maxRto = seconds(10);
  cfg.deliveryTimeout = seconds(60);
  cfg.initialCwnd = 64;  // keep the whole burst in flight
  VirtualDuo pair(55, cfg,
                  LinkParams{milliseconds(1), microseconds(0), 0.0, 0.0});
  OrderedSink sink;
  pair.b.setDeliver(sink.fn());
  for (int i = 0; i < 10; ++i) {
    pair.a.send(pair.b.address(), 1, std::to_string(i));
  }
  // Drop exactly one frame via a 100%-loss window...
  pair.net.setDefaultLink(
      LinkParams{milliseconds(1), microseconds(0), 1.0, 0.0});
  pair.a.send(pair.b.address(), 1, "10");
  pair.net.setDefaultLink(
      LinkParams{milliseconds(1), microseconds(0), 0.0, 0.0});
  // ...then keep traffic flowing so SACK evidence accumulates.
  for (int i = 11; i < 31; ++i) {
    pair.a.send(pair.b.address(), 1, std::to_string(i));
  }
  ASSERT_TRUE(sink.waitFor(1, 31, seconds(20)));
  ASSERT_TRUE(pair.a.flush(seconds(10)));
  const auto stats = pair.a.stats();
  EXPECT_EQ(stats.fastRetransmits, 1u);
  EXPECT_EQ(stats.retransmits, 1u);  // the timer path never fired
  const auto got = sink.get(1);
  for (int i = 0; i < 31; ++i) EXPECT_EQ(got[i], std::to_string(i));
}

TEST(ReliableAdaptive, FailedStreamStaysSilentAndFlushExReportsIt) {
  // Satellite regression (one-pass tick scan): when the delivery timeout
  // fails a stream, NOTHING of that stream may reach the wire — not the
  // retransmissions staged by the same tick, not the queued frames behind
  // the window.  The sim's sent counter pins it exactly.
  ReliableConfig cfg;
  cfg.tickInterval = milliseconds(2);
  cfg.rto = seconds(1);  // first retransmission would fire after expiry
  cfg.minRto = seconds(1);
  cfg.maxRto = seconds(1);
  cfg.deliveryTimeout = milliseconds(100);
  cfg.initialCwnd = 2;
  VirtualDuo pair(56, cfg);
  pair.net.setPartition(1, 2, true);
  std::mutex mutex;
  std::condition_variable cv;
  bool failed = false;
  pair.a.setOnFailure(
      [&](const NodeAddress&, std::uint64_t, const std::string&) {
        std::scoped_lock lock(mutex);
        failed = true;
        cv.notify_all();
      });
  for (int i = 0; i < 6; ++i) {
    pair.a.send(pair.b.address(), 1, std::to_string(i));
  }
  // Window 2: exactly two first transmissions; four frames queued.
  EXPECT_EQ(pair.a.stats().windowDeferred, 4u);
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, seconds(10), [&] { return failed; }));
  }
  EXPECT_EQ(pair.a.stats().failures, 1u);
  EXPECT_EQ(pair.a.stats().retransmits, 0u);
  EXPECT_EQ(pair.net.stats().sent, 2u);  // nothing staged by the failing tick
  // ...and the stream stays silent afterwards too.
  pair.clock.sleepFor(milliseconds(500));
  EXPECT_EQ(pair.net.stats().sent, 2u);
  // flushEx tells failure apart from success; bool flush keeps reporting
  // "drained" (documented legacy semantics initiator retry loops rely on).
  EXPECT_EQ(pair.a.flushEx(seconds(1)),
            ReliableEndpoint::FlushOutcome::kFailed);
  EXPECT_TRUE(pair.a.flush(seconds(1)));
  pair.a.resetStream(pair.b.address(), 1);
  EXPECT_EQ(pair.a.flushEx(seconds(1)),
            ReliableEndpoint::FlushOutcome::kFlushed);
}

TEST(ReliableAdaptive, FlushExTimesOutWhileFramesAreInFlight) {
  SimNetwork net(57);
  ReliableConfig cfg = fastConfig();
  cfg.deliveryTimeout = seconds(30);
  ReliableEndpoint a(net.open(), cfg);
  a.send(NodeAddress{50, 50}, 1, "unreachable");
  EXPECT_EQ(a.flushEx(milliseconds(100)),
            ReliableEndpoint::FlushOutcome::kTimedOut);
}

// ---------------------------------------------------------------------------
// ReliableConfig::normalized(): the ack-deferral invariant as code
// ---------------------------------------------------------------------------

TEST(ReliableConfigNormalize, DefaultConfigNeedsNoClamping) {
  std::vector<std::string> notes;
  (void)ReliableConfig{}.normalized(&notes);
  EXPECT_TRUE(notes.empty()) << "first note: " << notes.front();
}

TEST(ReliableConfigNormalize, ClampsEveryInconsistentKnob) {
  ReliableConfig cfg;
  cfg.tickInterval = milliseconds(0);
  cfg.ackEvery = 0;
  cfg.initialCwnd = 0;
  cfg.maxCwnd = 0;
  cfg.fastRetransmitDups = 0;
  cfg.minRto = microseconds(1);
  cfg.rto = microseconds(1);
  cfg.maxRto = microseconds(1);
  cfg.ackDelay = seconds(1);  // grossly above any sane RTO
  std::vector<std::string> notes;
  const ReliableConfig out = cfg.normalized(&notes);
  EXPECT_GT(out.tickInterval, Duration::zero());
  EXPECT_GE(out.ackEvery, 1u);
  EXPECT_GE(out.initialCwnd, 1u);
  EXPECT_GE(out.maxCwnd, out.initialCwnd);
  EXPECT_GE(out.fastRetransmitDups, 1u);
  EXPECT_GE(out.minRto, 2 * out.tickInterval);
  EXPECT_GE(out.rto, out.minRto);
  EXPECT_GE(out.maxRto, out.rto);
  // The invariant the satellite demands: worst-case ack deferral stays
  // under half of every RTO the sender can use.
  EXPECT_LE(out.ackDelay + out.tickInterval, out.minRto / 2);
  EXPECT_FALSE(notes.empty());
  // Normalizing a normalized config is a fixpoint.
  std::vector<std::string> again;
  (void)out.normalized(&again);
  EXPECT_TRUE(again.empty()) << "second pass clamped: " << again.front();
}

TEST(ReliableConfigNormalize, EndpointTracesClampsOnConstruction) {
  obs::MetricsRegistry reg;
  SimNetwork net(58);
  ReliableConfig cfg;
  cfg.ackDelay = seconds(1);  // forces a clamp note
  ReliableEndpoint a(net.open(), cfg, &reg);
  bool sawClamp = false;
  for (const obs::TraceEvent& ev : reg.trace().events()) {
    if (std::string_view(ev.category) == "reliable" &&
        ev.name == "config.clamp") {
      sawClamp = true;
    }
  }
  EXPECT_TRUE(sawClamp);
}

TEST(Reliable, DuplicatesOnCleanRetransmitPathAreDropped) {
  // Force retransmits by delaying ACK-carrying reverse traffic heavily.
  SimNetwork net(8);
  net.setDefaultLink(
      LinkParams{milliseconds(30), microseconds(0), 0.0, 0.0});
  ReliableConfig cfg = fastConfig();
  cfg.rto = milliseconds(5);  // far below RTT: every frame retransmits
  ReliableEndpoint a(net.open(), cfg);
  ReliableEndpoint b(net.open(), fastConfig());
  OrderedSink sink;
  b.setDeliver(sink.fn());
  for (int i = 0; i < 20; ++i) a.send(b.address(), 1, std::to_string(i));
  ASSERT_TRUE(sink.waitFor(1, 20, seconds(10)));
  std::this_thread::sleep_for(milliseconds(100));  // late retransmits land
  EXPECT_EQ(sink.get(1).size(), 20u);
  EXPECT_GT(b.stats().duplicates, 0u);
}

}  // namespace
}  // namespace dapple
