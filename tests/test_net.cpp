// Tests for the transport layer: addresses, the simulated network's
// delay/loss/duplication/partition behaviours, and real UDP sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/net/udp.hpp"
#include "dapple/util/error.hpp"
#include "dapple/util/time.hpp"

namespace dapple {
namespace {

// ---------------------------------------------------------------------------
// NodeAddress
// ---------------------------------------------------------------------------

TEST(NodeAddress, FormatAndParse) {
  const NodeAddress a{0x7f000001, 8080};
  EXPECT_EQ(a.toString(), "127.0.0.1:8080");
  EXPECT_EQ(NodeAddress::parse("127.0.0.1:8080"), a);
}

TEST(NodeAddress, PackedRoundTrip) {
  const NodeAddress a{0xdeadbeef, 65535};
  EXPECT_EQ(NodeAddress::fromPacked(a.packed()), a);
}

class BadAddress : public ::testing::TestWithParam<const char*> {};

TEST_P(BadAddress, ParseRejects) {
  EXPECT_THROW(NodeAddress::parse(GetParam()), AddressError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadAddress,
    ::testing::Values("", "1.2.3.4", "1.2.3:5", "256.1.1.1:5", "1.2.3.4:",
                      "1.2.3.4:99999", "a.b.c.d:1", "1.2.3.4:5x",
                      "1.2.3.4.5:1"));

TEST(NodeAddress, Ordering) {
  EXPECT_LT((NodeAddress{1, 5}), (NodeAddress{2, 1}));
  EXPECT_LT((NodeAddress{1, 5}), (NodeAddress{1, 6}));
}

// ---------------------------------------------------------------------------
// SimNetwork
// ---------------------------------------------------------------------------

/// Collects payloads with a condition variable for timed waits.
struct Sink {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::string> got;

  Endpoint::Handler handler() {
    return [this](const NodeAddress&, std::string_view payload) {
      std::scoped_lock lock(mutex);
      got.emplace_back(payload);  // the view dies with the callback
      cv.notify_all();
    };
  }

  bool waitForCount(std::size_t n, Duration timeout) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return got.size() >= n; });
  }

  std::vector<std::string> snapshot() {
    std::scoped_lock lock(mutex);
    return got;
  }
};

TEST(SimNetwork, DeliversDatagram) {
  SimNetwork net(1);
  auto a = net.open();
  auto b = net.open();
  Sink sink;
  b->setHandler(sink.handler());
  a->send(b->address(), "hi");
  ASSERT_TRUE(sink.waitForCount(1, seconds(2)));
  EXPECT_EQ(sink.snapshot()[0], "hi");
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(SimNetwork, AutoAssignedPortsAreUnique) {
  SimNetwork net(1);
  auto a = net.open();
  auto b = net.open();
  auto c = net.openAt(9);
  EXPECT_NE(a->address(), b->address());
  EXPECT_EQ(c->address().host, 9u);
}

TEST(SimNetwork, ExplicitPortConflictThrows) {
  SimNetwork net(1);
  auto a = net.openAt(1, 500);
  EXPECT_THROW(net.openAt(1, 500), AddressError);
}

TEST(SimNetwork, LossDropsRoughlyTheConfiguredFraction) {
  SimNetwork net(77);
  net.setDefaultLink(LinkParams{microseconds(0), microseconds(0), 0.3, 0.0});
  auto a = net.open();
  auto b = net.open();
  Sink sink;
  b->setHandler(sink.handler());
  constexpr int kCount = 2000;
  for (int i = 0; i < kCount; ++i) a->send(b->address(), "x");
  ASSERT_TRUE(net.awaitQuiescent(seconds(5)));
  const auto stats = net.stats();
  EXPECT_EQ(stats.sent, static_cast<std::uint64_t>(kCount));
  EXPECT_NEAR(static_cast<double>(stats.dropped) / kCount, 0.3, 0.05);
}

TEST(SimNetwork, DuplicationInjectsExtraCopies) {
  SimNetwork net(5);
  net.setDefaultLink(LinkParams{microseconds(0), microseconds(0), 0.0, 0.5});
  auto a = net.open();
  auto b = net.open();
  Sink sink;
  b->setHandler(sink.handler());
  constexpr int kCount = 1000;
  for (int i = 0; i < kCount; ++i) a->send(b->address(), "x");
  ASSERT_TRUE(net.awaitQuiescent(seconds(5)));
  const auto stats = net.stats();
  EXPECT_NEAR(static_cast<double>(stats.duplicated) / kCount, 0.5, 0.08);
  EXPECT_EQ(stats.delivered, stats.sent + stats.duplicated);
}

TEST(SimNetwork, JitterReordersDatagrams) {
  SimNetwork net(3);
  net.setDefaultLink(
      LinkParams{microseconds(100), microseconds(2000), 0.0, 0.0});
  auto a = net.open();
  auto b = net.open();
  Sink sink;
  b->setHandler(sink.handler());
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    a->send(b->address(), std::to_string(i));
  }
  ASSERT_TRUE(sink.waitForCount(kCount, seconds(10)));
  const auto got = sink.snapshot();
  int outOfOrder = 0;
  for (std::size_t i = 1; i < got.size(); ++i) {
    if (std::stoi(got[i]) < std::stoi(got[i - 1])) ++outOfOrder;
  }
  EXPECT_GT(outOfOrder, 0) << "jitter should reorder some datagrams";
}

TEST(SimNetwork, PartitionBlocksTrafficUntilHealed) {
  SimNetwork net(9);
  auto a = net.openAt(1);
  auto b = net.openAt(2);
  Sink sink;
  b->setHandler(sink.handler());

  net.setPartition(1, 2, true);
  a->send(b->address(), "lost");
  ASSERT_TRUE(net.awaitQuiescent(seconds(2)));
  EXPECT_TRUE(sink.snapshot().empty());
  EXPECT_EQ(net.stats().dropped, 1u);

  net.setPartition(1, 2, false);
  a->send(b->address(), "through");
  ASSERT_TRUE(sink.waitForCount(1, seconds(2)));
  EXPECT_EQ(sink.snapshot()[0], "through");
}

TEST(SimNetwork, PerHostLinkOverridesDefault) {
  SimNetwork net(4);
  net.setDefaultLink(LinkParams{microseconds(0), microseconds(0), 0.0, 0.0});
  net.setHostLink(1, 2, LinkParams{microseconds(0), microseconds(0), 1.0,
                                   0.0});  // total loss one way
  auto a = net.openAt(1);
  auto b = net.openAt(2);
  Sink sinkA;
  Sink sinkB;
  a->setHandler(sinkA.handler());
  b->setHandler(sinkB.handler());
  a->send(b->address(), "a->b");  // dropped by host link
  b->send(a->address(), "b->a");  // default link: delivered
  ASSERT_TRUE(net.awaitQuiescent(seconds(2)));
  EXPECT_TRUE(sinkB.snapshot().empty());
  ASSERT_TRUE(sinkA.waitForCount(1, seconds(2)));
}

TEST(SimNetwork, SendToUnknownAddressCountsUndeliverable) {
  SimNetwork net(4);
  auto a = net.open();
  a->send(NodeAddress{42, 42}, "void");
  ASSERT_TRUE(net.awaitQuiescent(seconds(2)));
  EXPECT_EQ(net.stats().undeliverable, 1u);
}

TEST(SimNetwork, ClosedEndpointStopsSendingAndReceiving) {
  SimNetwork net(4);
  auto a = net.open();
  auto b = net.open();
  Sink sink;
  b->setHandler(sink.handler());
  b->close();
  a->send(b->address(), "after-close");
  ASSERT_TRUE(net.awaitQuiescent(seconds(2)));
  EXPECT_TRUE(sink.snapshot().empty());
  a->close();
  a->send(b->address(), "from-closed");  // silently ignored
  EXPECT_EQ(net.stats().sent, 1u);
}

TEST(SimNetwork, DeterministicDropPatternForSameSeed) {
  const auto run = [](std::uint64_t seed) {
    SimNetwork net(seed);
    net.setDefaultLink(
        LinkParams{microseconds(0), microseconds(0), 0.5, 0.0});
    auto a = net.open();
    auto b = net.open();
    Sink sink;
    b->setHandler(sink.handler());
    for (int i = 0; i < 100; ++i) a->send(b->address(), std::to_string(i));
    net.awaitQuiescent(seconds(5));
    auto got = sink.snapshot();
    std::sort(got.begin(), got.end());
    return got;
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(456));
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

TEST(Udp, LoopbackSendReceive) {
  UdpNetwork net;
  auto a = net.open();
  auto b = net.open();
  EXPECT_EQ(a->address().host, 0x7f000001u);  // 127.0.0.1
  EXPECT_NE(a->address().port, 0);
  Sink sink;
  b->setHandler(sink.handler());
  a->send(b->address(), "over real sockets");
  ASSERT_TRUE(sink.waitForCount(1, seconds(5)));
  EXPECT_EQ(sink.snapshot()[0], "over real sockets");
  a->close();
  b->close();
}

TEST(Udp, ExplicitPortBindAndConflict) {
  UdpNetwork net;
  auto a = net.open(0);
  // Binding the same port twice must fail.
  EXPECT_THROW(net.open(a->address().port), NetworkError);
  a->close();
}

TEST(Udp, OversizedDatagramCountsAsLoss) {
  // One batched send surface: an oversize datagram is dropped and tallied
  // (loss semantics the reliable layer absorbs), never thrown — single
  // send() is just a one-element sendBatch.
  UdpNetwork net;
  auto a = net.open();
  std::string big(70000, 'x');
  const std::uint64_t before = net.stats().sendErrors;
  a->send(a->address(), big);
  EXPECT_EQ(net.stats().sendErrors, before + 1);
  a->close();
}

TEST(Udp, ManyDatagramsArrive) {
  UdpNetwork net;
  auto a = net.open();
  auto b = net.open();
  Sink sink;
  b->setHandler(sink.handler());
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    a->send(b->address(), std::to_string(i));
    if (i % 50 == 0) std::this_thread::sleep_for(milliseconds(1));
  }
  // UDP on loopback rarely drops, but tolerate a little.
  sink.waitForCount(kCount, seconds(5));
  EXPECT_GE(sink.snapshot().size(), static_cast<std::size_t>(kCount * 9 / 10));
  a->close();
  b->close();
}

}  // namespace
}  // namespace dapple
