// Experiment E14 (DESIGN.md §15): wire-codec cost — text vs binary.
//
// google-benchmark, two levels:
//
//  * BM_Encode / BM_Decode / BM_RoundTrip — token-stream cost, the level
//    the data path actually runs: reliable frame heads, session control
//    messages, WAL records, and typed message fields are written and read
//    token-by-token (no Value tree in between).  Three shapes: a small
//    DATA-frame head, a medium control record, a list-heavy numeric batch.
//    scripts/bench_serial_gate.py gates on BM_RoundTrip: binary must
//    deliver >= 3x text throughput (geomean across shapes) and >= 25%
//    smaller frames on every shape.
//
//  * BM_ValueRoundTrip — the same codecs under a generic Value-tree
//    round-trip (DataMessage bodies, checkpoint images).  Ungated:
//    tree construction dominates and is codec-independent, so the ratio
//    here shows the codec's share of a full dynamic decode.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <string>

#include "dapple/serial/value.hpp"
#include "dapple/serial/wire.hpp"

using namespace dapple;

namespace {

// ---------------------------------------------------------------------------
// Token-stream shapes.  Encoders write one frame; decoders consume it and
// fold every field into a checksum (defeats dead-code elimination and
// proves the round trip).
// ---------------------------------------------------------------------------

/// A reliable-layer DATA head: kind, 54-bit stream hash, epoch, seq, two
/// piggybacked ack blocks.
void encodeSmall(WireWriter& w) {
  w.writeU64(0);                     // kind = DATA
  w.writeU64(0x3779b97f4a7c15ull);   // streamId (FNV-style hash)
  w.writeU64(7);                     // epoch
  w.writeU64(482113);                // seq
  w.beginList(2);                    // ack blocks (base, len)
  w.writeU64(481900);
  w.writeU64(113);
  w.writeU64(9125);
  w.writeU64(40);
}

std::uint64_t decodeSmall(WireReader& r) {
  std::uint64_t sum = r.readU64() + r.readU64() + r.readU64() + r.readU64();
  const std::size_t blocks = r.beginList();
  for (std::size_t i = 0; i < 2 * blocks; ++i) sum += r.readU64();
  return sum;
}

/// A session/checkpoint control record: kind string, Lamport timestamps and
/// counters of mixed magnitude, two rate doubles, a flag, member ids.
void encodeMedium(WireWriter& w) {
  w.writeString("ckpt.marker");
  w.writeU64(0x5deece66d123ull);  // lamport
  w.writeU64(123456789);          // seq
  w.writeU64(42);                 // epoch
  w.writeU64(0x9e3779b97f4aull);  // session hash
  w.writeI64(-987654);            // drift
  w.writeU64(31337);              // appends
  w.writeU64(7);                  // retries
  w.writeU64(1722550000000ull);   // wall millis
  w.writeU64(65536);              // window
  w.writeU64(3);                  // round
  w.writeF64(0.7312584);          // load
  w.writeF64(15625.25);           // rate
  w.writeBool(true);              // stable
  w.beginList(4);                 // member ids
  w.writeU64(0x1f2e3d4cull);
  w.writeU64(0x2e3d4c5bull);
  w.writeU64(0x3d4c5b6aull);
  w.writeU64(0x4c5b6a79ull);
}

std::uint64_t decodeMedium(WireReader& r) {
  std::uint64_t sum = r.readStringView().size();
  sum += r.readU64() + r.readU64() + r.readU64() + r.readU64();
  sum += static_cast<std::uint64_t>(r.readI64());
  sum += r.readU64() + r.readU64() + r.readU64() + r.readU64() + r.readU64();
  sum += static_cast<std::uint64_t>(r.readF64() + r.readF64());
  sum += r.readBool() ? 1 : 0;
  const std::size_t members = r.beginList();
  for (std::size_t i = 0; i < members; ++i) sum += r.readU64();
  return sum;
}

/// A numeric batch: 512 signed values spanning 2^15..2^63 (timestamps,
/// hashes, deltas) — the shape where per-token cost dominates.
void encodeListHeavy(WireWriter& w) {
  w.beginList(512);
  for (std::uint64_t i = 0; i < 512; ++i) {
    const auto v = static_cast<std::int64_t>(i * 0x9e3779b97f4a7c15ull);
    w.writeI64(v >> ((i % 4) * 16));
  }
}

std::uint64_t decodeListHeavy(WireReader& r) {
  std::uint64_t sum = 0;
  const std::size_t count = r.beginList();
  for (std::size_t i = 0; i < count; ++i) {
    sum += static_cast<std::uint64_t>(r.readI64());
  }
  return sum;
}

using EncodeFn = void (*)(WireWriter&);
using DecodeFn = std::uint64_t (*)(WireReader&);

void BM_Encode(benchmark::State& state, EncodeFn encode, DecodeFn /*decode*/,
               WireCodec codec) {
  std::string scratch;
  std::size_t bytes = 0;
  for (auto _ : state) {
    WireWriter w(codec, scratch);
    encode(w);
    bytes = w.str().size();
    benchmark::DoNotOptimize(scratch.data());
  }
  state.counters["bytes_per_msg"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations());
}

void BM_Decode(benchmark::State& state, EncodeFn encode, DecodeFn decode,
               WireCodec codec) {
  WireWriter w(codec);
  encode(w);
  const std::string wire = std::move(w).str();
  for (auto _ : state) {
    WireReader r(wire);
    benchmark::DoNotOptimize(decode(r));
  }
  state.counters["bytes_per_msg"] = static_cast<double>(wire.size());
  state.SetItemsProcessed(state.iterations());
}

/// Encode + decode in one loop: the number the gate compares, matching what
/// a frame actually costs end to end (sender serialize + receiver parse).
void BM_RoundTrip(benchmark::State& state, EncodeFn encode, DecodeFn decode,
                  WireCodec codec) {
  std::string scratch;
  std::size_t bytes = 0;
  for (auto _ : state) {
    WireWriter w(codec, scratch);
    encode(w);
    bytes = w.str().size();
    WireReader r(w.str());
    benchmark::DoNotOptimize(decode(r));
  }
  state.counters["bytes_per_msg"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations());
}

#define SERIAL_BENCH(fn)                                                    \
  BENCHMARK_CAPTURE(fn, small_text, encodeSmall, decodeSmall,               \
                    WireCodec::kText);                                      \
  BENCHMARK_CAPTURE(fn, small_binary, encodeSmall, decodeSmall,             \
                    WireCodec::kBinary);                                    \
  BENCHMARK_CAPTURE(fn, medium_text, encodeMedium, decodeMedium,            \
                    WireCodec::kText);                                      \
  BENCHMARK_CAPTURE(fn, medium_binary, encodeMedium, decodeMedium,          \
                    WireCodec::kBinary);                                    \
  BENCHMARK_CAPTURE(fn, listheavy_text, encodeListHeavy, decodeListHeavy,   \
                    WireCodec::kText);                                      \
  BENCHMARK_CAPTURE(fn, listheavy_binary, encodeListHeavy, decodeListHeavy, \
                    WireCodec::kBinary)

SERIAL_BENCH(BM_Encode);
SERIAL_BENCH(BM_Decode);
SERIAL_BENCH(BM_RoundTrip);

// ---------------------------------------------------------------------------
// Value-tree round trip (ungated — tree construction is codec-independent
// and dominates; the gap here is the codec's share of a dynamic decode).
// ---------------------------------------------------------------------------

Value makeTree() {
  ValueMap m;
  m["kind"] = Value("calendar.update");
  m["seq"] = Value(static_cast<std::int64_t>(123456789));
  m["load"] = Value(0.7312584);
  m["owner"] = Value("dapplet-17@host-3");
  ValueList rows;
  for (int i = 0; i < 32; ++i) {
    rows.push_back(Value(static_cast<std::int64_t>(i * 1009)));
  }
  m["rows"] = Value(std::move(rows));
  return Value(std::move(m));
}

void BM_ValueRoundTrip(benchmark::State& state, WireCodec codec) {
  const Value v = makeTree();
  std::string scratch;
  for (auto _ : state) {
    WireWriter w(codec, scratch);
    v.encode(w);
    Value out = Value::fromWire(w.str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["bytes_per_msg"] =
      static_cast<double>(v.toWire(codec).size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ValueRoundTrip, text, WireCodec::kText);
BENCHMARK_CAPTURE(BM_ValueRoundTrip, binary, WireCodec::kBinary);

}  // namespace

int main(int argc, char** argv) {
  return dapple::benchutil::runBenchmarks("serial", argc, argv);
}
