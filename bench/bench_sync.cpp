// Experiment E7 (DESIGN.md): synchronization constructs (paper §4.3) —
// intra-dapplet primitives vs. their inter-dapplet extensions.
//
// google-benchmark: local semaphore/barrier/single-assignment costs, then
// distributed barrier and token-backed distributed semaphore round trips.
// Expected shape: local constructs are nanoseconds-to-microseconds; the
// distributed versions pay message round trips (microseconds-to-
// milliseconds depending on the simulated delay).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/services/sync/distributed.hpp"
#include "dapple/services/sync/local.hpp"
#include "dapple/services/tokens/token_manager.hpp"

using namespace dapple;

namespace {

void BM_LocalSemaphore(benchmark::State& state) {
  Semaphore sem(1);
  for (auto _ : state) {
    sem.acquire();
    sem.release();
  }
}
BENCHMARK(BM_LocalSemaphore);

void BM_LocalBarrierTwoThreads(benchmark::State& state) {
  // Both gbench threads run the same iteration count, so every arrival
  // pairs exactly.  (A hand-rolled partner thread with a `done` flag races:
  // the partner can observe `done` after the final pairing and exit while
  // the main thread blocks on one more arriveAndWait.)
  static Barrier barrier(2);  // reusable across repetitions by design
  for (auto _ : state) {
    barrier.arriveAndWait();
  }
}
BENCHMARK(BM_LocalBarrierTwoThreads)->Threads(2)
    ->Unit(benchmark::kMicrosecond);

void BM_LocalBoundedChannel(benchmark::State& state) {
  BoundedChannel<int> ch(64);
  std::thread consumer([&] {
    try {
      while (true) (void)ch.take();
    } catch (const ShutdownError&) {
    }
  });
  for (auto _ : state) {
    ch.put(1);
  }
  ch.close();
  consumer.join();
}
BENCHMARK(BM_LocalBoundedChannel);

void BM_LocalSingleAssignmentGet(benchmark::State& state) {
  SingleAssignment<int> var;
  var.set(7);
  for (auto _ : state) benchmark::DoNotOptimize(var.get());
}
BENCHMARK(BM_LocalSingleAssignmentGet);

struct DistBarrierRig {
  explicit DistBarrierRig(std::size_t n, microseconds delay) : net(8) {
    net.setDefaultLink(LinkParams{delay, delay / 4, 0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "b" + std::to_string(i)));
      barriers.push_back(
          std::make_unique<DistributedBarrier>(*dapplets.back(), "bb"));
    }
    std::vector<InboxRef> refs;
    for (auto& b : barriers) refs.push_back(b->ref());
    for (std::size_t i = 0; i < n; ++i) barriers[i]->attach(refs, i);
    // Companion threads keep arriving so member 0's arrive is measurable.
    for (std::size_t i = 1; i < n; ++i) {
      DistributedBarrier* barrier = barriers[i].get();
      dapplets[i]->spawn([barrier](std::stop_token stop) {
        try {
          while (!stop.stop_requested()) {
            barrier->arriveAndWait(seconds(60));
          }
        } catch (const Error&) {
        }
      });
    }
  }

  ~DistBarrierRig() {
    for (auto& d : dapplets) d->stop();
    barriers.clear();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<DistributedBarrier>> barriers;
};

void BM_DistributedBarrier(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  DistBarrierRig rig(n, microseconds(100));
  for (auto _ : state) {
    rig.barriers[0]->arriveAndWait(seconds(60));
  }
  state.counters["members"] = static_cast<double>(n);
}
BENCHMARK(BM_DistributedBarrier)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_DistributedSemaphore(benchmark::State& state) {
  SimNetwork net(9);
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TokenManager>> managers;
  constexpr std::size_t kMembers = 3;
  for (std::size_t i = 0; i < kMembers; ++i) {
    dapplets.push_back(
        std::make_unique<Dapplet>(net, "s" + std::to_string(i)));
    managers.push_back(std::make_unique<TokenManager>(*dapplets.back()));
  }
  std::vector<InboxRef> refs;
  for (auto& m : managers) refs.push_back(m->ref());
  for (std::size_t i = 0; i < kMembers; ++i) {
    TokenBag mine;
    if (TokenManager::homeOfColor("sem", kMembers) == i) mine["sem"] = 1;
    managers[i]->attach(refs, i, mine);
  }
  DistributedSemaphore sem(*managers[0], "sem");
  for (auto _ : state) {
    sem.acquire(1, seconds(30));
    sem.release();
  }
  managers.clear();
  for (auto& d : dapplets) d->stop();
}
BENCHMARK(BM_DistributedSemaphore)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E7: synchronization constructs — local vs distributed "
              "(paper §4.3) ===\n\n");
  const int rc = dapple::benchutil::runBenchmarks("sync", argc, argv);
  if (rc != 0) return rc;
  return 0;
}
