// Experiment E4 (DESIGN.md): the clock service of paper §4.2.
//
// Part 1 (google-benchmark): raw Lamport-clock operation cost and the
// per-message piggyback overhead (send with vs. conceptually without the
// timestamp — measured as serialization delta).
// Part 2 (table): Ricart–Agrawala critical-section latency vs member count
// and the timestamp-priority property under contention.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <memory>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/clocks/dist_mutex.hpp"
#include "dapple/services/clocks/vector_clock.hpp"
#include "dapple/util/time.hpp"

using namespace dapple;

namespace {

void BM_LamportTick(benchmark::State& state) {
  LamportClock clock;
  for (auto _ : state) benchmark::DoNotOptimize(clock.tick());
}
BENCHMARK(BM_LamportTick);

void BM_LamportObserve(benchmark::State& state) {
  LamportClock clock;
  std::uint64_t ts = 0;
  for (auto _ : state) benchmark::DoNotOptimize(clock.observe(ts += 2));
}
BENCHMARK(BM_LamportObserve);

void BM_VectorClockObserve(benchmark::State& state) {
  const auto members = static_cast<std::size_t>(state.range(0));
  VectorClock a;
  VectorClock b;
  for (std::size_t i = 0; i < members; ++i) {
    a.tick("m" + std::to_string(i));
    b.tick("m" + std::to_string(i));
  }
  for (auto _ : state) {
    a.observe(b, "m0");
  }
  state.counters["members"] = static_cast<double>(members);
}
BENCHMARK(BM_VectorClockObserve)->Arg(2)->Arg(8)->Arg(32);

void BM_MessageRoundTripWithClock(benchmark::State& state) {
  // End-to-end message round trip: the clock piggyback is one u64 token in
  // the envelope; this measures the whole send+receive path that carries it.
  SimNetwork net(4);
  Dapplet a(net, "a");
  Dapplet b(net, "b");
  Inbox& inB = b.createInbox("in");
  Inbox& inA = a.createInbox("in");
  Outbox& outA = a.createOutbox();
  Outbox& outB = b.createOutbox();
  outA.add(inB.ref());
  outB.add(inA.ref());
  b.spawn([&](std::stop_token stop) {
    try {
      while (!stop.stop_requested()) {
        Delivery del = inB.receive();
        outB.send(*del.message);
      }
    } catch (const ShutdownError&) {
    }
  });
  DataMessage msg("rt");
  for (auto _ : state) {
    outA.send(msg);
    (void)inA.receiveFor(seconds(10));
  }
  state.SetLabel("full round trip incl. Lamport stamping");
  a.stop();
  b.stop();
}
BENCHMARK(BM_MessageRoundTripWithClock)->Unit(benchmark::kMicrosecond);

struct MutexRig {
  explicit MutexRig(std::size_t n, microseconds delay) : net(5) {
    net.setDefaultLink(LinkParams{delay, delay / 4, 0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "mx" + std::to_string(i)));
      mutexes.push_back(
          std::make_unique<DistributedMutex>(*dapplets.back(), "cs"));
    }
    std::vector<InboxRef> refs;
    for (auto& m : mutexes) refs.push_back(m->ref());
    for (std::size_t i = 0; i < n; ++i) mutexes[i]->attach(refs, i);
  }

  ~MutexRig() {
    mutexes.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<DistributedMutex>> mutexes;
};

void printMutexTable() {
  std::printf("\n=== E4b: Ricart-Agrawala mutual exclusion (conflict "
              "resolution by timestamp) ===\n");
  std::printf("Uncontended acquire+release latency; 1ms WAN delay.\n");
  std::printf("%-8s %14s %16s\n", "members", "latency ms",
              "msgs per entry");
  for (std::size_t n : {2, 4, 8, 16}) {
    MutexRig rig(n, milliseconds(1));
    constexpr int kRounds = 20;
    Stopwatch watch;
    for (int r = 0; r < kRounds; ++r) {
      rig.mutexes[0]->acquire(seconds(30));
      rig.mutexes[0]->release();
    }
    const double ms = watch.elapsedSeconds() * 1e3 / kRounds;
    const double msgs =
        static_cast<double>(rig.mutexes[0]->stats().messages) / kRounds;
    std::printf("%-8zu %14.2f %16.1f\n", n, ms, msgs);
  }
  std::printf("Expected shape: latency ~1 RTT regardless of N; the caller "
              "sends N-1\nREQUESTs per entry (each peer answers with one "
              "REPLY, so 2(N-1) messages\ncross the network in total).\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E4: clocks and timestamp conflict resolution (paper "
              "§4.2) ===\n");
  const int rc = dapple::benchutil::runBenchmarks("clocks", argc, argv);
  if (rc != 0) return rc;
  printMutexTable();
  return 0;
}
