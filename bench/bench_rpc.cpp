// Experiment E6 (DESIGN.md): RPC over inboxes (paper §3.2 "Communication
// Layer Features": asynchronous RPCs are messages to an inbox-addressed
// object; synchronous RPC = pairwise asynchronous RPC).
//
// google-benchmark: synchronous call latency vs simulated network delay,
// asynchronous notify throughput, and payload-size scaling.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dapple/core/rpc.hpp"
#include "dapple/net/sim.hpp"

using namespace dapple;

namespace {

// Data-path wire codec for every rig (--codec binary flips it; see E14).
WireCodec gCodec = WireCodec::kText;

struct RpcRig {
  explicit RpcRig(microseconds delay) : net(6) {
    net.setDefaultLink(LinkParams{delay, delay / 4, 0.0, 0.0});
    DappletConfig cfg;
    cfg.wireCodec = gCodec;
    serverD = std::make_unique<Dapplet>(net, "server", cfg);
    clientD = std::make_unique<Dapplet>(net, "client", cfg);
    server = std::make_unique<RpcServer>(*serverD);
    server->bind("echo", [](const Value& args) { return args; });
    server->bind("bump", [this](const Value&) {
      ++notifies;
      return Value();
    });
    client = std::make_unique<RpcClient>(*clientD, server->ref());
  }

  ~RpcRig() {
    client.reset();
    server.reset();
    serverD->stop();
    clientD->stop();
  }

  SimNetwork net;
  std::unique_ptr<Dapplet> serverD;
  std::unique_ptr<Dapplet> clientD;
  std::unique_ptr<RpcServer> server;
  std::unique_ptr<RpcClient> client;
  std::atomic<std::int64_t> notifies{0};
};

void BM_SyncCallVsDelay(benchmark::State& state) {
  const auto delayUs = state.range(0);
  RpcRig rig{microseconds(delayUs)};
  ValueMap args;
  args["x"] = Value(1);
  const Value v(args);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.client->call("echo", v, seconds(10)));
  }
  state.counters["delay_us"] = static_cast<double>(delayUs);
}
BENCHMARK(BM_SyncCallVsDelay)->Arg(0)->Arg(100)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

void BM_AsyncNotifyThroughput(benchmark::State& state) {
  RpcRig rig{microseconds(0)};
  ValueMap args;
  const Value v(args);
  std::int64_t sent = 0;
  for (auto _ : state) {
    rig.client->notify("bump", v);
    ++sent;
    if (sent % 256 == 0) {
      // Keep the server's inbox bounded.
      while (rig.notifies.load() + 200 < sent) {
        std::this_thread::sleep_for(microseconds(50));
      }
    }
  }
  // Drain before the rig tears down so served == sent.
  while (rig.notifies.load() < sent) {
    std::this_thread::sleep_for(microseconds(100));
  }
  state.counters["notifies/s"] =
      benchmark::Counter(static_cast<double>(sent),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AsyncNotifyThroughput)->Unit(benchmark::kMicrosecond);

// Broadcast notify: one client outbox bound to N servers (the paper's
// fan-out model applied to asynchronous RPC).  The request body is encoded
// once and shared across all destinations (DESIGN.md §10), so deliveries/s
// should scale with N rather than flattening at the encoder.
void BM_NotifyFanout(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  SimNetwork net(6);
  net.setDefaultLink(LinkParams{microseconds(0), microseconds(0), 0.0, 0.0});
  std::vector<std::unique_ptr<Dapplet>> serverDs;
  std::vector<std::unique_ptr<RpcServer>> servers;
  std::atomic<std::int64_t> served{0};
  DappletConfig cfg;
  cfg.wireCodec = gCodec;
  for (std::size_t i = 0; i < width; ++i) {
    serverDs.push_back(
        std::make_unique<Dapplet>(net, "server" + std::to_string(i), cfg));
    servers.push_back(std::make_unique<RpcServer>(*serverDs.back()));
    servers.back()->bind("bump", [&served](const Value&) {
      ++served;
      return Value();
    });
  }
  Dapplet clientD(net, "client", cfg);
  RpcClient client(clientD, servers[0]->ref());
  for (std::size_t i = 1; i < width; ++i) client.addServer(servers[i]->ref());
  ValueMap args;
  args["blob"] = Value(std::string(256, 'z'));
  const Value v(args);
  std::int64_t sent = 0;
  for (auto _ : state) {
    client.notify("bump", v);
    ++sent;
    if (sent % 64 == 0) {
      // Keep every server's inbox bounded.
      while (served.load() + 200 * static_cast<std::int64_t>(width) <
             sent * static_cast<std::int64_t>(width)) {
        std::this_thread::sleep_for(microseconds(50));
      }
    }
  }
  while (served.load() < sent * static_cast<std::int64_t>(width)) {
    std::this_thread::sleep_for(microseconds(100));
  }
  state.counters["deliveries/s"] = benchmark::Counter(
      static_cast<double>(sent * static_cast<std::int64_t>(width)),
      benchmark::Counter::kIsRate);
  state.counters["fanout"] = static_cast<double>(width);
  servers.clear();
  for (auto& d : serverDs) d->stop();
  clientD.stop();
}
BENCHMARK(BM_NotifyFanout)->Arg(1)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_SyncCallPayloadSize(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  RpcRig rig{microseconds(50)};
  ValueMap args;
  args["blob"] = Value(std::string(bytes, 'z'));
  const Value v(args);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.client->call("echo", v, seconds(10)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * bytes * 2));  // there and back
}
BENCHMARK(BM_SyncCallPayloadSize)->Arg(64)->Arg(1024)->Arg(8192)->Arg(30000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  gCodec = dapple::benchutil::codecFlag(argc, argv);
  std::printf("=== E6: RPC over inboxes (paper §3.2, codec=%s) ===\n",
              wireCodecName(gCodec));
  std::printf("Sync call = request + correlated reply; async notify = "
              "fire-and-forget message.\nExpected shape: sync latency ~ "
              "2x one-way delay + fixed stack cost; notify\nthroughput "
              "independent of delay; payload cost linear in size.\n\n");
  const int rc = dapple::benchutil::runBenchmarks("rpc", argc, argv);
  if (rc != 0) return rc;
  return 0;
}
