// Density experiment: how many dapplets fit in one process once the
// runtime is a Reactor instead of a thread triple (DESIGN.md §13).
//
// The paper's vision is "world-wide" scale — processes hosting very large
// numbers of small distributed objects.  With the classic runtime each
// dapplet costs at least one retransmit-timer thread, capping a process at
// a few thousand dapplets.  In reactor mode every dapplet shares one small
// event-loop pool: N dapplets, O(hw_concurrency) threads.
//
// Shape: N dapplets on a simulated zero-delay network, wired into a ring
// (dapplet i's outbox -> dapplet i+1's inbox), every inbox event-driven via
// onMessage.  T tokens circulate a fixed total number of hops.  We report
// construction rate, steady-state hop throughput, and — the density gate —
// the threads the swarm ADDS over the process baseline (main thread, sim
// network delivery), which must stay within 2x hw_concurrency no matter N.
//
//   ./bench_swarm            # 10,000 dapplets
//   ./bench_swarm --quick    # 1,500 dapplets (bench-smoke ctest label)
#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/core/reactor.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"

using namespace dapple;

namespace {

/// Current OS thread count of this process (the density gate's measurand).
std::size_t threadCount() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t n = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %zu", &n) == 1) break;
  }
  std::fclose(f);
  return n;
}

struct SwarmResult {
  std::size_t baselineThreads = 0;
  double buildSeconds = 0;
  double runSeconds = 0;
  double stopSeconds = 0;
  std::uint64_t hops = 0;
  std::size_t peakThreads = 0;
  Reactor::Stats reactorStats;
  bool completed = false;
};

SwarmResult runSwarm(std::size_t dapplets, int tokens, int hopsPerToken) {
  SwarmResult res;
  SimNetwork net(42);
  net.setDefaultLink(LinkParams{microseconds(0), microseconds(0), 0.0, 0.0});

  res.baselineThreads = threadCount();  // main + sim delivery, pre-reactor

  Reactor reactor;  // default pool: hw_concurrency loops

  DappletConfig cfg;
  cfg.runtime.reactor = &reactor;
  // 10k dapplets each scanning for retransmits every 5ms would be 2M wheel
  // fires/s for nothing (the sim link is lossless).  A lazy tick keeps the
  // wheel load proportional to what the experiment measures.
  cfg.reliable.tickInterval = milliseconds(250);

  const auto buildStart = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<Dapplet>> swarm;
  std::vector<Inbox*> inboxes(dapplets, nullptr);
  std::vector<Outbox*> outboxes(dapplets, nullptr);
  swarm.reserve(dapplets);
  for (std::size_t i = 0; i < dapplets; ++i) {
    swarm.push_back(
        std::make_unique<Dapplet>(net, "d" + std::to_string(i), cfg));
    inboxes[i] = &swarm.back()->createInbox("ring");
    outboxes[i] = &swarm.back()->createOutbox();
  }
  for (std::size_t i = 0; i < dapplets; ++i) {
    outboxes[i]->add(inboxes[(i + 1) % dapplets]->ref());
  }

  std::atomic<std::uint64_t> hopsDone{0};
  std::atomic<int> tokensDone{0};
  std::mutex doneMutex;
  std::condition_variable doneCv;
  for (std::size_t i = 0; i < dapplets; ++i) {
    Outbox* next = outboxes[i];
    inboxes[i]->onMessage([next, &hopsDone, &tokensDone, &doneMutex,
                           &doneCv](Delivery del) {
      const auto hops = del.as<DataMessage>().get("hops").asInt();
      hopsDone.fetch_add(1, std::memory_order_relaxed);
      if (hops <= 0) {
        {
          std::scoped_lock lock(doneMutex);
          tokensDone.fetch_add(1, std::memory_order_relaxed);
        }
        doneCv.notify_all();
        return;
      }
      DataMessage tok("tok");
      tok.set("hops", Value(static_cast<long long>(hops - 1)));
      next->send(tok);
    });
  }
  res.buildSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    buildStart)
          .count();
  res.peakThreads = std::max(res.peakThreads, threadCount());

  // Inject the tokens spread evenly around the ring, then wait for every
  // token to burn its hop budget, sampling the thread count as we go.
  const auto runStart = std::chrono::steady_clock::now();
  for (int t = 0; t < tokens; ++t) {
    DataMessage tok("tok");
    tok.set("hops", Value(static_cast<long long>(hopsPerToken)));
    outboxes[(dapplets / static_cast<std::size_t>(tokens)) *
             static_cast<std::size_t>(t)]
        ->send(tok);
  }
  {
    std::unique_lock lock(doneMutex);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (tokensDone.load() < tokens) {
      if (doneCv.wait_until(lock, deadline) == std::cv_status::timeout) break;
      lock.unlock();
      res.peakThreads = std::max(res.peakThreads, threadCount());
      lock.lock();
    }
  }
  res.completed = tokensDone.load() >= tokens;
  res.runSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    runStart)
          .count();
  res.hops = hopsDone.load();
  res.peakThreads = std::max(res.peakThreads, threadCount());
  res.reactorStats = reactor.stats();

  const auto stopStart = std::chrono::steady_clock::now();
  for (auto& d : swarm) d->stop();
  swarm.clear();
  reactor.stop();
  res.stopSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    stopStart)
          .count();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  const std::size_t dapplets = quick ? 1500 : 10000;
  const int tokens = 32;
  const int hopsPerToken = quick ? 300 : 2000;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("=== Swarm density: %zu dapplets, one reactor ===\n", dapplets);
  std::printf("Gate: the swarm adds <= 2x hw_concurrency (%u) OS threads "
              "over the process\nbaseline while %d tokens make %d hops each "
              "around the ring.\n\n",
              hw, tokens, hopsPerToken);

  const SwarmResult r = runSwarm(dapplets, tokens, hopsPerToken);
  const std::size_t added =
      r.peakThreads > r.baselineThreads ? r.peakThreads - r.baselineThreads
                                        : 0;
  const double hopsPerSec =
      r.runSeconds > 0 ? static_cast<double>(r.hops) / r.runSeconds : 0;

  std::printf("build: %zu dapplets in %.2fs (%.0f dapplets/s)\n", dapplets,
              r.buildSeconds,
              static_cast<double>(dapplets) / r.buildSeconds);
  std::printf("run:   %llu hops in %.2fs (%.0f hops/s)%s\n",
              static_cast<unsigned long long>(r.hops), r.runSeconds,
              hopsPerSec, r.completed ? "" : "  [INCOMPLETE]");
  std::printf("stop:  %.2fs\n", r.stopSeconds);
  std::printf("threads: peak %zu = baseline %zu + %zu added (limit 2x%u)  "
              "reactor: %llu tasks, %llu timer fires\n",
              r.peakThreads, r.baselineThreads, added, hw,
              static_cast<unsigned long long>(r.reactorStats.tasksRun),
              static_cast<unsigned long long>(r.reactorStats.timersFired));

  dapple::benchutil::BenchReport rep("swarm");
  rep.row("swarm/dapplets=" + std::to_string(dapplets))
      .num("dapplets", static_cast<double>(dapplets))
      .num("build_s", r.buildSeconds)
      .num("hops", static_cast<double>(r.hops))
      .num("hops_per_s", hopsPerSec)
      .num("stop_s", r.stopSeconds)
      .num("peak_threads", static_cast<double>(r.peakThreads))
      .num("baseline_threads", static_cast<double>(r.baselineThreads))
      .num("added_threads", static_cast<double>(added))
      .num("hw_concurrency", static_cast<double>(hw))
      .num("reactor_tasks", static_cast<double>(r.reactorStats.tasksRun))
      .num("reactor_timer_fires",
           static_cast<double>(r.reactorStats.timersFired))
      .num("completed", r.completed ? 1 : 0);
  rep.write();

  if (!r.completed) {
    std::fprintf(stderr, "swarm: tokens did not finish within 120s\n");
    return 1;
  }
  if (added > 2 * hw) {
    std::fprintf(stderr,
                 "swarm: density gate FAILED: swarm added %zu threads > "
                 "2x%u\n",
                 added, hw);
    return 1;
  }
  std::printf("\ndensity gate PASSED: %zu dapplets added %zu threads "
              "(peak %zu).\n",
              dapplets, added, r.peakThreads);
  return 0;
}
