// Experiment E3 (DESIGN.md): the token service of paper §4.1.
//
// Part 1 (google-benchmark): request/release round-trip cost, local-home
// vs remote-home colours, the reader/writer protocol, and E13 — grant
// latency percentiles on a hot contended colour, cached credit
// (DESIGN.md §14) vs the round-trip-per-grant baseline.  The percentile
// counters land in BENCH_tokens.json; scripts/bench_tokens_gate.py gates
// the cached-vs-round-trip P99 ratio in the bench-smoke pass.
// Part 2 (table): deadlock-detection latency vs hold-and-wait cycle
// length.  Expected shape: detection latency grows with cycle length (the
// probe must traverse the whole cycle) on top of the probe delay.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/services/tokens/token_manager.hpp"
#include "dapple/util/rng.hpp"
#include "dapple/util/time.hpp"

using namespace dapple;

namespace {

struct TokenRig {
  TokenRig(std::size_t n, const TokenBag& seed, TokenConfig cfg = {},
           LinkParams link = {})
      : net(9) {
    net.setDefaultLink(link);
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "t" + std::to_string(i)));
      managers.push_back(
          std::make_unique<TokenManager>(*dapplets.back(), cfg));
    }
    std::vector<InboxRef> refs;
    for (auto& m : managers) refs.push_back(m->ref());
    for (std::size_t i = 0; i < n; ++i) {
      TokenBag mine;
      for (const auto& [color, count] : seed) {
        if (TokenManager::homeOfColor(color, n) == i) mine[color] = count;
      }
      managers[i]->attach(refs, i, mine);
    }
  }

  ~TokenRig() {
    managers.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TokenManager>> managers;
};

/// A colour name homed at `target` for the given member count.
TokenColor colorHomedAt(std::size_t target, std::size_t members) {
  for (int salt = 0;; ++salt) {
    const TokenColor color = "c" + std::to_string(salt);
    if (TokenManager::homeOfColor(color, members) == target) return color;
  }
}

void BM_RequestReleaseLocalHome(benchmark::State& state) {
  const std::size_t n = 4;
  const TokenColor color = colorHomedAt(0, n);
  TokenRig rig(n, {{color, 4}});
  for (auto _ : state) {
    rig.managers[0]->request({{color, 1}});
    rig.managers[0]->release({{color, 1}});
  }
}
BENCHMARK(BM_RequestReleaseLocalHome)->Unit(benchmark::kMicrosecond);

void BM_RequestReleaseRemoteHome(benchmark::State& state) {
  const std::size_t n = 4;
  const TokenColor color = colorHomedAt(2, n);
  TokenRig rig(n, {{color, 4}});
  for (auto _ : state) {
    rig.managers[0]->request({{color, 1}});
    rig.managers[0]->release({{color, 1}});
  }
}
BENCHMARK(BM_RequestReleaseRemoteHome)->Unit(benchmark::kMicrosecond);

void BM_ReaderWriterMix(benchmark::State& state) {
  const auto writePct = state.range(0);
  const std::size_t n = 3;
  const TokenColor color = colorHomedAt(1, n);
  TokenRig rig(n, {{color, 4}});
  Rng rng(1);
  for (auto _ : state) {
    if (rng.below(100) < static_cast<std::uint64_t>(writePct)) {
      rig.managers[0]->request({{color, TokenRequest::kAllTokens}});
      rig.managers[0]->release({{color, TokenRequest::kAllTokens}});
    } else {
      rig.managers[0]->request({{color, 1}});
      rig.managers[0]->release({{color, 1}});
    }
  }
  state.counters["write%"] = static_cast<double>(writePct);
}
BENCHMARK(BM_ReaderWriterMix)->Arg(0)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

// ---- E13: hot-colour grant latency, cached credit vs round-trip ----------

/// Three members hammer one remote-homed colour with request/release pairs
/// and record each grant's latency.  With `creditBatch > 0` the first miss
/// borrows a credit batch and everything after is served from the local
/// cache; with 0 every grant pays the home round trip (the link delay
/// below, twice).
std::vector<double> hotGrantLatenciesUs(std::int64_t creditBatch,
                                        int opsPerMember) {
  const std::size_t n = 4;
  const TokenColor color = colorHomedAt(3, n);
  TokenConfig cfg;
  // Waiting on a hot colour is legitimate; keep deadlock probes out.
  cfg.probeDelay = seconds(60);
  cfg.probeInterval = seconds(60);
  cfg.creditBatch = creditBatch;
  cfg.leaseDuration = seconds(10);
  // Pool large enough that three borrowers' credit batches never collide:
  // the contention under test is request rate, not token scarcity.
  TokenRig rig(n, {{color, 24}}, cfg,
               LinkParams{milliseconds(1), microseconds(0), 0.0, 0.0});
  std::vector<std::vector<double>> lat(3);
  std::vector<std::thread> threads;
  for (std::size_t m = 0; m < 3; ++m) {
    threads.emplace_back([&, m] {
      lat[m].reserve(static_cast<std::size_t>(opsPerMember));
      for (int i = 0; i < opsPerMember; ++i) {
        Stopwatch watch;
        rig.managers[m]->request({{color, 1}});
        lat[m].push_back(watch.elapsedSeconds() * 1e6);
        rig.managers[m]->release({{color, 1}});
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  return all;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void BM_HotColorGrant(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  for (auto _ : state) {
    std::vector<double> lats = hotGrantLatenciesUs(cached ? 8 : 0, 150);
    std::sort(lats.begin(), lats.end());
    state.counters["p50_us"] = percentile(lats, 0.50);
    state.counters["p99_us"] = percentile(lats, 0.99);
  }
}
BENCHMARK(BM_HotColorGrant)
    ->ArgName("cached")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Deadlock-detection latency for an L-cycle: member i holds colour i and
/// requests colour (i+1) mod L.
double deadlockLatencyMs(std::size_t cycle, std::uint64_t seed) {
  TokenConfig cfg;
  cfg.probeDelay = milliseconds(20);
  cfg.probeInterval = milliseconds(20);
  TokenBag seedBag;
  std::vector<TokenColor> colors;
  for (std::size_t i = 0; i < cycle; ++i) {
    colors.push_back("ring" + std::to_string(i) + "-" +
                     std::to_string(seed));
    seedBag[colors.back()] = 1;
  }
  // 2ms per hop so the probe's traversal of the cycle is visible on top
  // of the probe-delay floor.
  TokenRig rig(cycle, seedBag, cfg,
               LinkParams{milliseconds(2), microseconds(200), 0.0, 0.0});
  for (std::size_t i = 0; i < cycle; ++i) {
    rig.managers[i]->request({{colors[i], 1}});
  }
  std::atomic<double> latencyMs{0};
  std::vector<std::thread> threads;
  Stopwatch watch;
  for (std::size_t i = 0; i < cycle; ++i) {
    threads.emplace_back([&, i] {
      try {
        rig.managers[i]->request({{colors[(i + 1) % cycle], 1}},
                                 seconds(30));
        rig.managers[i]->release({{colors[(i + 1) % cycle], 1}});
      } catch (const DeadlockError&) {
        latencyMs = watch.elapsedSeconds() * 1e3;
        // The victim breaks the cycle: releasing its held colour lets the
        // remaining members' requests complete.
        rig.managers[i]->release({{colors[i], 1}});
      } catch (const Error&) {
        // Timeout on a non-victim if several victims raced; harmless here.
      }
    });
  }
  for (auto& t : threads) t.join();
  return latencyMs;
}

void printDeadlockTable() {
  std::printf("\n=== E3b: deadlock-detection latency vs cycle length ===\n");
  std::printf("(probe delay 20ms; latency until the first DeadlockError)\n");
  std::printf("%-8s %12s\n", "cycle", "latency ms");
  for (std::size_t cycle : {2, 3, 4, 6, 8}) {
    double best = 1e18;
    for (int r = 0; r < 3; ++r) {
      best = std::min(best,
                      deadlockLatencyMs(cycle, 100 * cycle + r));
    }
    std::printf("%-8zu %12.1f\n", cycle, best);
  }
  std::printf("Expected shape: grows with cycle length — probes traverse "
              "the whole\nhold-and-wait ring before returning to their "
              "origin.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E3: token service (paper §4.1) ===\n");
  const int rc = dapple::benchutil::runBenchmarks("tokens", argc, argv);
  if (rc != 0) return rc;
  printDeadlockTable();
  return 0;
}
