#pragma once
// Shared bench-harness helpers: every bench_* binary, google-benchmark or
// hand-rolled, emits a machine-readable BENCH_<name>.json next to where it
// runs, and understands `--quick` (one cheap repetition) so CI can smoke the
// whole suite (the `bench-smoke` ctest label) without paying full
// measurement time.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dapple/serial/wire.hpp"

namespace dapple::benchutil {

/// True when `--quick` appears in argv.  Hand-rolled benches use this to
/// shrink their sweeps; runBenchmarks() handles it for google-benchmark.
inline bool quickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

/// `--codec text|binary` (default text, matching DappletConfig).  Benches
/// on the data path thread this into their rig configs so the same binary
/// captures a text baseline and a binary candidate; runBenchmarks() strips
/// the flag before gbench sees it.
inline WireCodec codecFlag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--codec" &&
        std::string(argv[i + 1]) == "binary") {
      return WireCodec::kBinary;
    }
  }
  return WireCodec::kText;
}

/// Google-benchmark front door.  Rewrites argv so that:
///  * `--quick` becomes `--benchmark_min_time=0.01` (one short repetition);
///  * unless the caller passed `--benchmark_out`, the run writes
///    `BENCH_<shortName>.json` in JSON format.  (Constructing a JSONReporter
///    by hand is NOT equivalent: RunSpecifiedBenchmarks ignores the file
///    reporter when the flag is absent.)
inline int runBenchmarks(const char* shortName, int argc, char** argv) {
  std::vector<std::string> args;
  args.emplace_back(argc > 0 ? argv[0] : shortName);
  bool haveOut = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      args.emplace_back("--benchmark_min_time=0.01");
      continue;
    }
    if (arg == "--codec") {  // consumed by codecFlag(); skip flag + value
      if (i + 1 < argc) ++i;
      continue;
    }
    if (arg.rfind("--benchmark_out=", 0) == 0) haveOut = true;
    args.push_back(std::move(arg));
  }
  if (!haveOut) {
    args.emplace_back(std::string("--benchmark_out=BENCH_") + shortName +
                      ".json");
    args.emplace_back("--benchmark_out_format=json");
  }
  std::vector<char*> argvVec;
  argvVec.reserve(args.size());
  for (std::string& a : args) argvVec.push_back(a.data());
  int argcVec = static_cast<int>(argvVec.size());
  benchmark::Initialize(&argcVec, argvVec.data());
  if (benchmark::ReportUnrecognizedArguments(argcVec, argvVec.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// JSON emitter for the hand-rolled benches (tables that don't fit
/// google-benchmark's per-iteration model).  Mirrors the gbench layout —
/// a top-level "benchmarks" array of {"name": ..., <numeric fields>} — so
/// one script can read both kinds of BENCH_*.json.
///
///   BenchReport rep("session");
///   rep.row("establish/members=8").num("median_ms", 12.3);
///   ...
///   // ~BenchReport (or rep.write()) emits BENCH_session.json
class BenchReport {
 public:
  explicit BenchReport(std::string shortName)
      : name_(std::move(shortName)) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { write(); }

  class Row {
   public:
    Row& num(const std::string& key, double value) {
      fields_.emplace_back(key, value);
      return *this;
    }

   private:
    friend class BenchReport;
    explicit Row(std::string name) : name_(std::move(name)) {}
    std::string name_;
    std::vector<std::pair<std::string, double>> fields_;
  };

  Row& row(std::string rowName) {
    rows_.push_back(Row(std::move(rowName)));
    return rows_.back();
  }

  /// Writes BENCH_<name>.json.  Idempotent; also runs from the destructor.
  void write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f,
                 "{\n  \"context\": {\"bench\": \"%s\", \"format\": "
                 "\"dapple-bench-v1\"},\n  \"benchmarks\": [",
                 name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\"", i == 0 ? "" : ",",
                   r.name_.c_str());
      for (const auto& [key, value] : r.fields_) {
        // JSON has no NaN/Inf literal; degrade to 0 rather than corrupt.
        const double safe = std::isfinite(value) ? value : 0.0;
        std::fprintf(f, ", \"%s\": %.6g", key.c_str(), safe);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("\n[bench] wrote %s (%zu rows)\n", path.c_str(),
                rows_.size());
  }

 private:
  std::string name_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace dapple::benchutil
