// Experiment E11 (DESIGN.md §12): crash-recovery cost.
//
// Three tables:
//  * WAL append throughput — fsync on vs off, small vs large values.  The
//    fsync is the durability tax every journaled mutation pays.
//  * Checkpoint latency and image size vs state size — what a coordinated
//    cut costs each member, and how much WAL it retires.
//  * Kill -> restart -> rejoin, in VIRTUAL time on a simulated WAN: an
//    undisturbed paced pipeline vs one whose stateful member is killed
//    mid-stream and recovers via checkpoint + WAL replay + REJOIN.  The
//    overhead column is the end-to-end price of the crash.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/recovery/recovery.hpp"
#include "dapple/testkit/virtual_clock.hpp"
#include "dapple/util/time.hpp"

using namespace dapple;

namespace {

// Dapplet-level wire codec for the checkpoint/rejoin rigs (--codec binary).
// The WAL table sweeps BOTH codecs in one run so the rows sit side by side.
WireCodec gCodec = WireCodec::kText;

double msBetween(TimePoint from, TimePoint to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string scratchDir(const std::string& tag) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("dapple_bench_rec_" + std::to_string(::getpid()) + "_" +
                     tag);
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path.string();
}

// ---- WAL append throughput ------------------------------------------------

struct WalRate {
  double appendsPerSec = 0;
  double mbPerSec = 0;
};

WalRate walThroughput(bool fsync, WireCodec codec, std::size_t valueBytes,
                      std::size_t n, const std::string& tag) {
  const std::string dir = scratchDir(tag);
  WalRate rate;
  {
    recovery::WriteAheadLog wal(
        dir + "/w.wal", recovery::WriteAheadLog::Options(fsync, codec));
    wal.replayAll();
    const Value value(std::string(valueBytes, 'x'));
    Stopwatch watch;
    for (std::size_t i = 0; i < n; ++i) {
      wal.append(recovery::WalRecord::kPut, "key" + std::to_string(i % 64),
                 &value, i + 1);
    }
    const double secs = watch.elapsedSeconds();
    rate.appendsPerSec = static_cast<double>(n) / secs;
    rate.mbPerSec =
        static_cast<double>(wal.sizeBytes()) / secs / (1024.0 * 1024.0);
  }
  std::filesystem::remove_all(dir);
  return rate;
}

// ---- checkpoint latency ---------------------------------------------------

struct CkptCost {
  double ms = 0;
  double imageBytes = 0;
  double walBytesRetired = 0;
};

CkptCost checkpointCost(SimNetwork& net, std::uint32_t host, std::size_t keys,
                        const std::string& tag) {
  const std::string dir = scratchDir(tag);
  CkptCost cost;
  {
    Dapplet d(net, "ck" + std::to_string(host),
              [&] {
                DappletConfig cfg;
                cfg.host = host;
                cfg.wireCodec = gCodec;
                return cfg;
              }());
    recovery::DurableState ds(d, dir);
    const Value value(std::string(64, 'v'));
    for (std::size_t i = 0; i < keys; ++i) {
      ds.store().put("state/" + std::to_string(i), value);
    }
    cost.walBytesRetired = static_cast<double>(ds.stats().walBytes);
    Stopwatch watch;
    ds.checkpoint();
    cost.ms = watch.elapsedSeconds() * 1e3;
    cost.imageBytes = static_cast<double>(ds.stats().checkpointBytes);
    d.stop();
  }
  std::filesystem::remove_all(dir);
  return cost;
}

// ---- kill -> restart -> rejoin in virtual time ----------------------------

constexpr std::int64_t kItems = 6;

Value roleParams(const std::string& role) {
  ValueMap params;
  params["role"] = Value(role);
  return Value(std::move(params));
}

/// The recovery test-suite's paced pipeline: the feeder streams numbered
/// items until acked; "sum" folds them into durable state exactly once,
/// one apply per 100ms of virtual time.
void registerPipelineApp(SessionAgent& agent) {
  agent.registerApp("bench.pipeline", [](SessionContext& ctx) {
    const std::string role = ctx.params().at("role").asString();
    if (role == "feeder") {
      Outbox& out = ctx.outbox("out");
      Inbox& ack = ctx.inbox("ack");
      std::int64_t next = 1;
      while (next <= kItems && !ctx.stopToken().stop_requested()) {
        DataMessage item("item");
        item.set("seq", Value(static_cast<long long>(next)));
        try {
          out.send(item);
        } catch (const Error&) {
          out.reset();
        }
        try {
          if (auto del = ack.receiveFor(milliseconds(200))) {
            const auto* msg =
                dynamic_cast<const DataMessage*>(del->message.get());
            if (msg != nullptr && msg->kind() == "ack") {
              next = std::max<std::int64_t>(next, msg->get("seq").asInt() + 1);
            }
          }
        } catch (const PeerDownError&) {
        }
      }
      ctx.setResult(Value(static_cast<long long>(next - 1)));
      return;
    }
    Inbox& in = ctx.inbox("in");
    Outbox& out = ctx.outbox("out");
    StateView& state = ctx.state();
    std::int64_t last = state.getOr("b.lastSeq", Value(0)).asInt();
    std::int64_t sum = state.getOr("b.sum", Value(0)).asInt();
    while (last < kItems && !ctx.stopToken().stop_requested()) {
      std::optional<Delivery> del;
      try {
        del = in.receiveFor(milliseconds(200));
      } catch (const PeerDownError&) {
        continue;
      }
      if (!del) continue;
      const auto* msg = dynamic_cast<const DataMessage*>(del->message.get());
      if (msg == nullptr || msg->kind() != "item") continue;
      const std::int64_t seq = msg->get("seq").asInt();
      if (seq == last + 1) {
        ctx.dapplet().clockSource().sleepFor(milliseconds(100));
        sum += seq;
        last = seq;
        state.put("b.sum", Value(static_cast<long long>(sum)));
        state.put("b.lastSeq", Value(static_cast<long long>(last)));
      }
      if (seq <= last) {
        DataMessage ackMsg("ack");
        ackMsg.set("seq", Value(static_cast<long long>(last)));
        try {
          out.send(ackMsg);
        } catch (const Error&) {
          out.reset();
        }
      }
    }
    ctx.setResult(Value(static_cast<long long>(sum)));
  });
}

DappletConfig wanCfg(testkit::VirtualClock& clock, std::uint32_t host) {
  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.maxRto = milliseconds(120);
  cfg.reliable.deliveryTimeout = seconds(10);
  cfg.host = host;
  cfg.wireCodec = gCodec;
  return cfg;
}

Initiator::Plan pipelinePlan(const InboxRef& feederCtl,
                             const InboxRef& victimCtl) {
  Initiator::Plan plan;
  plan.app = "bench.pipeline";
  Initiator::MemberPlan feeder;
  feeder.name = "feeder";
  feeder.control = feederCtl;
  feeder.inboxes = {"ack"};
  feeder.params = roleParams("feeder");
  Initiator::MemberPlan victim;
  victim.name = "victim";
  victim.control = victimCtl;
  victim.inboxes = {"in"};
  victim.writeKeys = {"b.sum", "b.lastSeq"};
  victim.params = roleParams("sum");
  plan.members = {feeder, victim};
  plan.edges = {{"feeder", "out", "victim", "in"},
                {"victim", "out", "feeder", "ack"}};
  plan.phaseTimeout = seconds(30);
  return plan;
}

struct RejoinCost {
  double baselineMs = 0;        ///< undisturbed session, virtual time
  double recoveredMs = 0;       ///< with a mid-stream kill-restart
  double restartToDoneMs = 0;   ///< reboot -> session completion
  double replayedRecords = 0;   ///< WAL records replayed at the reboot
};

RejoinCost rejoinCost(std::uint64_t seed) {
  RejoinCost cost;
  // Baseline: same pipeline, nobody dies.
  {
    testkit::VirtualClock clock;
    SimNetwork::Options opts;
    opts.clock = &clock;
    SimNetwork net(seed, opts);
    net.setDefaultLink(
        LinkParams{microseconds(500), microseconds(200), 0.0, 0.0});
    Dapplet director(net, "director", wanCfg(clock, 1));
    Dapplet feeder(net, "feeder", wanCfg(clock, 2));
    SessionAgent feederAgent(feeder);
    registerPipelineApp(feederAgent);
    const std::string dir = scratchDir("base");
    Dapplet victim(net, "victim", wanCfg(clock, 3));
    recovery::DurableState ds(victim, dir);
    SessionAgent::Config vcfg;
    vcfg.store = &ds.store();
    vcfg.durableSessions = true;
    vcfg.incarnation = ds.incarnation();
    SessionAgent victimAgent(victim, vcfg);
    registerPipelineApp(victimAgent);
    Initiator initiator(director);
    auto result = initiator.establish(
        pipelinePlan(feederAgent.controlRef(), victimAgent.controlRef()));
    const TimePoint t0 = clock.now();
    initiator.awaitCompletion(result.sessionId, seconds(120));
    cost.baselineMs = msBetween(t0, clock.now());
    initiator.terminate(result.sessionId);
    victim.stop();
    feeder.stop();
    director.stop();
    std::filesystem::remove_all(dir);
  }
  // Kill-restart: crash the stateful member mid-stream, reboot from its
  // durable directory at a new address, REJOIN, finish.
  {
    testkit::VirtualClock clock;
    SimNetwork::Options opts;
    opts.clock = &clock;
    SimNetwork net(seed, opts);
    net.setDefaultLink(
        LinkParams{microseconds(500), microseconds(200), 0.0, 0.0});
    Dapplet director(net, "director", wanCfg(clock, 1));
    Dapplet feeder(net, "feeder", wanCfg(clock, 2));
    SessionAgent feederAgent(feeder);
    registerPipelineApp(feederAgent);
    const std::string dir = scratchDir("crash");
    auto victim = std::make_unique<Dapplet>(net, "victim", wanCfg(clock, 3));
    auto ds = std::make_unique<recovery::DurableState>(*victim, dir);
    SessionAgent::Config vcfg;
    vcfg.store = &ds->store();
    vcfg.durableSessions = true;
    vcfg.incarnation = ds->incarnation();
    auto victimAgent = std::make_unique<SessionAgent>(*victim, vcfg);
    registerPipelineApp(*victimAgent);
    Initiator initiator(director);
    auto result = initiator.establish(
        pipelinePlan(feederAgent.controlRef(), victimAgent->controlRef()));
    const TimePoint t0 = clock.now();
    clock.sleepFor(milliseconds(250));  // provably mid-stream (100ms/apply)
    victim->crash();
    victimAgent.reset();
    ds.reset();
    victim.reset();
    const TimePoint tRestart = clock.now();
    auto victim2 = std::make_unique<Dapplet>(net, "victim", wanCfg(clock, 4));
    auto ds2 = std::make_unique<recovery::DurableState>(*victim2, dir);
    cost.replayedRecords = static_cast<double>(ds2->info().replayedRecords);
    SessionAgent::Config vcfg2;
    vcfg2.store = &ds2->store();
    vcfg2.durableSessions = true;
    vcfg2.incarnation = ds2->incarnation();
    auto victimAgent2 = std::make_unique<SessionAgent>(*victim2, vcfg2);
    registerPipelineApp(*victimAgent2);
    victimAgent2->rejoinPersisted();
    initiator.awaitCompletion(result.sessionId, seconds(120));
    const TimePoint tDone = clock.now();
    cost.recoveredMs = msBetween(t0, tDone);
    cost.restartToDoneMs = msBetween(tRestart, tDone);
    initiator.terminate(result.sessionId);
    victimAgent2.reset();
    ds2.reset();
    victim2->stop();
    feeder.stop();
    director.stop();
    std::filesystem::remove_all(dir);
  }
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  gCodec = dapple::benchutil::codecFlag(argc, argv);
  dapple::benchutil::BenchReport report("recovery");

  std::printf("=== E11: crash-recovery cost (DESIGN.md §12, codec=%s) ===\n\n",
              wireCodecName(gCodec));

  // ---- WAL append throughput ---------------------------------------------
  // Sweeps both codecs regardless of --codec so text and binary rows land in
  // one report.  Text rows keep their historical names; binary rows add a
  // /codec=binary suffix (bench_compare treats new rows as informational).
  const std::size_t appends = quick ? 200 : 2000;
  std::printf("WAL append throughput (%zu appends)\n", appends);
  std::printf("%-10s %-8s %-10s | %12s %10s\n", "fsync", "codec", "value-B",
              "appends/s", "MB/s");
  std::printf("------------------------------+-------------------------\n");
  for (const bool fsync : {true, false}) {
    for (const WireCodec codec : {WireCodec::kText, WireCodec::kBinary}) {
      for (const std::size_t valueBytes :
           {std::size_t{16}, std::size_t{256}}) {
        const WalRate rate = walThroughput(
            fsync, codec, valueBytes, appends,
            std::string("wal_") + (fsync ? "on" : "off") + "_" +
                wireCodecName(codec) + "_" + std::to_string(valueBytes));
        std::printf("%-10s %-8s %-10zu | %12.0f %10.2f\n",
                    fsync ? "on" : "off", wireCodecName(codec), valueBytes,
                    rate.appendsPerSec, rate.mbPerSec);
        std::string rowName = std::string("wal/fsync=") +
                              (fsync ? "on" : "off") +
                              "/value_bytes=" + std::to_string(valueBytes);
        if (codec == WireCodec::kBinary) rowName += "/codec=binary";
        report.row(rowName)
            .num("appends_per_s", rate.appendsPerSec)
            .num("mb_per_s", rate.mbPerSec);
      }
    }
  }

  // ---- checkpoint latency -------------------------------------------------
  SimNetwork net(42);
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{100, 1000}
            : std::vector<std::size_t>{100, 1000, 10000};
  std::printf("\nCheckpoint compaction vs state size (64B values)\n");
  std::printf("%-8s | %10s %12s %14s\n", "keys", "ms", "image-B",
              "wal-retired-B");
  std::printf("---------+---------------------------------------\n");
  std::uint32_t host = 10;
  for (const std::size_t keys : sizes) {
    const CkptCost cost =
        checkpointCost(net, host++, keys, "ckpt_" + std::to_string(keys));
    std::printf("%-8zu | %10.2f %12.0f %14.0f\n", keys, cost.ms,
                cost.imageBytes, cost.walBytesRetired);
    report.row("checkpoint/keys=" + std::to_string(keys))
        .num("ms", cost.ms)
        .num("image_bytes", cost.imageBytes)
        .num("wal_retired_bytes", cost.walBytesRetired);
  }

  // ---- kill -> restart -> rejoin ------------------------------------------
  std::printf("\nKill -> restart -> rejoin (virtual time, simulated WAN, "
              "%lld paced items)\n",
              static_cast<long long>(kItems));
  std::printf("%-22s | %12s %12s %16s %10s\n", "", "baseline-ms",
              "recovered-ms", "restart->done-ms", "replayed");
  std::printf("-----------------------+------------------------------------"
              "-----------\n");
  const RejoinCost cost = rejoinCost(7);
  std::printf("%-22s | %12.1f %12.1f %16.1f %10.0f\n", "pipeline",
              cost.baselineMs, cost.recoveredMs, cost.restartToDoneMs,
              cost.replayedRecords);
  report.row("rejoin/items=" + std::to_string(kItems))
      .num("baseline_ms", cost.baselineMs)
      .num("recovered_ms", cost.recoveredMs)
      .num("restart_to_done_ms", cost.restartToDoneMs)
      .num("replayed_records", cost.replayedRecords);

  std::printf("\nExpected shape: fsync dominates WAL cost (orders of "
              "magnitude below the\nfsync-off ceiling); checkpoint latency "
              "grows linearly with the image; the\nrecovered run pays the "
              "crash-to-restart gap plus REJOIN round-trips on top\nof the "
              "baseline, and replays exactly the journaled mutation "
              "prefix.\n");
  return 0;
}
