// Experiment E5 (DESIGN.md): global checkpointing cost (paper §4.2) —
// the paper's clock-based algorithm vs. the Chandy–Lamport marker
// algorithm (ablation of the design choice DESIGN.md §4 calls out).
//
// Table: snapshot wall time and recorded channel messages vs ring size,
// while coin traffic flows.  Expected shape: both algorithms' cost grows
// with membership (linear message complexity here: the clock algorithm
// gathers over N control channels, markers traverse every app channel);
// both always produce a conserved total.
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/snapshot/snapshot.hpp"
#include "dapple/util/rng.hpp"
#include "dapple/util/time.hpp"

using namespace dapple;

namespace {

constexpr std::int64_t kCoinsPerNode = 40;

struct Node {
  std::unique_ptr<Dapplet> dapplet;
  Inbox* in = nullptr;
  Outbox* out = nullptr;
  std::mutex mutex;
  std::int64_t coins = kCoinsPerNode;

  Value state() {
    std::scoped_lock lock(mutex);
    std::int64_t queued = 0;
    in->forEachQueued([&](const Delivery& del) {
      const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
      if (msg != nullptr && msg->kind() == "coins") {
        queued += msg->get("n").asInt();
      }
    });
    ValueMap map;
    map["coins"] = Value(static_cast<long long>(coins + queued));
    return Value(std::move(map));
  }
};

struct Ring {
  explicit Ring(std::size_t n, std::uint64_t seed) : net(seed) {
    net.setDefaultLink(
        LinkParams{microseconds(800), microseconds(500), 0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<Node>());
      nodes[i]->dapplet =
          std::make_unique<Dapplet>(net, "n" + std::to_string(i));
      nodes[i]->in = &nodes[i]->dapplet->createInbox("coins");
      nodes[i]->out = &nodes[i]->dapplet->createOutbox();
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i]->out->add(nodes[(i + 1) % n]->in->ref());
    }
  }

  void startTraffic() {
    for (auto& nodePtr : nodes) {
      Node* node = nodePtr.get();
      node->dapplet->spawn([node](std::stop_token stop) {
        Rng rng(node->dapplet->id() + 5);
        while (!stop.stop_requested()) {
          {
            std::scoped_lock lock(node->mutex);
            if (node->coins > 0) {
              const auto batch = 1 + static_cast<std::int64_t>(rng.below(
                                         static_cast<std::uint64_t>(
                                             node->coins)));
              node->coins -= batch;
              DataMessage msg("coins");
              msg.set("n", Value(static_cast<long long>(batch)));
              node->out->send(msg);
            }
            while (auto del = node->in->tryReceive()) {
              const auto* msg =
                  dynamic_cast<const DataMessage*>(del->message.get());
              if (msg != nullptr && msg->kind() == "coins") {
                node->coins += msg->get("n").asInt();
              }
            }
          }
          std::this_thread::sleep_for(microseconds(400));
        }
      });
    }
  }

  ~Ring() {
    for (auto& node : nodes) node->dapplet->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Node>> nodes;
};

std::int64_t snapshotTotal(const GlobalSnapshot& snap) {
  std::int64_t total = 0;
  for (const auto& [idx, state] : snap.states) {
    total += state.at("coins").asInt();
  }
  for (const auto& [idx, msgs] : snap.channels) {
    for (const Value& m : msgs) {
      auto decoded = decodeMessage(m.at("wire").asString());
      const auto* coins = dynamic_cast<const DataMessage*>(decoded.get());
      if (coins != nullptr && coins->kind() == "coins") {
        total += coins->get("n").asInt();
      }
    }
  }
  return total;
}

std::size_t channelMsgs(const GlobalSnapshot& snap) {
  std::size_t n = 0;
  for (const auto& [idx, msgs] : snap.channels) n += msgs.size();
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  dapple::benchutil::BenchReport report("snapshot");
  std::printf("=== E5: global snapshot cost — clock-based (paper) vs "
              "Chandy-Lamport markers ===\n");
  std::printf("Coin ring under live traffic; conserved total verifies the "
              "cut.\n\n");
  std::printf("%-6s | %-28s | %-28s\n", "", "clock checkpoint (paper §4.2)",
              "marker snapshot (C-L)");
  std::printf("%-6s | %9s %9s %7s | %9s %9s %7s\n", "nodes", "ms",
              "chan-msgs", "exact", "ms", "chan-msgs", "exact");
  std::printf("-------+------------------------------+-------------------"
              "-----------\n");
  const std::vector<std::size_t> ringSizes =
      quick ? std::vector<std::size_t>{2, 4}
            : std::vector<std::size_t>{2, 4, 8, 16};
  for (std::size_t n : ringSizes) {
    const std::int64_t expected =
        kCoinsPerNode * static_cast<std::int64_t>(n);
    double clockMs = 0;
    std::size_t clockChan = 0;
    bool clockExact = false;
    {
      Ring ring(n, 10 + n);
      std::vector<std::unique_ptr<CheckpointService>> services;
      std::vector<InboxRef> refs;
      for (auto& nodePtr : ring.nodes) {
        Node* node = nodePtr.get();
        services.push_back(std::make_unique<CheckpointService>(
            *node->dapplet, [node] { return node->state(); }));
      }
      for (auto& s : services) refs.push_back(s->ref());
      for (std::size_t i = 0; i < n; ++i) services[i]->attach(refs, i);
      ring.startTraffic();
      std::this_thread::sleep_for(milliseconds(30));
      Stopwatch watch;
      GlobalSnapshot snap =
          services[0]->take(milliseconds(150), seconds(20));
      clockMs = watch.elapsedSeconds() * 1e3;
      clockChan = channelMsgs(snap);
      clockExact = snapshotTotal(snap) == expected;
      services.clear();
    }
    double markerMs = 0;
    std::size_t markerChan = 0;
    bool markerExact = false;
    {
      Ring ring(n, 20 + n);
      std::vector<std::unique_ptr<MarkerRegion>> services;
      std::vector<InboxRef> refs;
      for (auto& nodePtr : ring.nodes) {
        Node* node = nodePtr.get();
        services.push_back(std::make_unique<MarkerRegion>(
            *node->dapplet, [node] { return node->state(); }));
      }
      for (auto& s : services) refs.push_back(s->ref());
      for (std::size_t i = 0; i < n; ++i) {
        services[i]->attach(refs, i, {ring.nodes[i]->out}, 1);
      }
      ring.startTraffic();
      std::this_thread::sleep_for(milliseconds(30));
      Stopwatch watch;
      GlobalSnapshot snap = services[0]->take(seconds(20));
      markerMs = watch.elapsedSeconds() * 1e3;
      markerChan = channelMsgs(snap);
      markerExact = snapshotTotal(snap) == expected;
      services.clear();
    }
    std::printf("%-6zu | %9.1f %9zu %7s | %9.1f %9zu %7s\n", n, clockMs,
                clockChan, clockExact ? "yes" : "NO!", markerMs, markerChan,
                markerExact ? "yes" : "NO!");
    report.row("snapshot/nodes=" + std::to_string(n))
        .num("clock_ms", clockMs)
        .num("clock_chan_msgs", static_cast<double>(clockChan))
        .num("clock_exact", clockExact ? 1 : 0)
        .num("marker_ms", markerMs)
        .num("marker_chan_msgs", static_cast<double>(markerChan))
        .num("marker_exact", markerExact ? 1 : 0);
  }
  std::printf("\nExpected shape: the clock checkpoint pays a fixed settle "
              "window plus clock-query\nand gather rounds; the marker "
              "snapshot completes as soon as markers circle the\nring, so "
              "it is faster on small rings but both must always be "
              "exact.\n");
  return 0;
}
