// Experiment E8 (DESIGN.md): the varied network environment (paper §2.2).
//
// Validates and characterizes the Internet substitute: measured one-way
// delay distribution vs configuration, per-message delay independence
// (reordering rate under jitter), and the channel property that survives
// it all — per-channel FIFO through the ordering layer while raw datagram
// order degrades.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/reliable/reliable.hpp"
#include "dapple/util/time.hpp"

using namespace dapple;

namespace {

struct DelayStats {
  double meanMs = 0;
  double p50Ms = 0;
  double p99Ms = 0;
  int reordered = 0;
};

DelayStats measureRaw(microseconds base, microseconds jitter, int count,
                      std::uint64_t seed) {
  SimNetwork net(seed);
  net.setDefaultLink(LinkParams{base, jitter, 0.0, 0.0});
  auto tx = net.open();
  auto rx = net.open();
  std::mutex mutex;
  std::vector<std::pair<int, double>> arrivals;  // (seq, delay ms)
  std::vector<TimePoint> sentAt(static_cast<std::size_t>(count));
  rx->setHandler([&](const NodeAddress&, std::string_view payload) {
    const auto now = Clock::now();
    const int seq = std::stoi(std::string(payload));
    std::scoped_lock lock(mutex);
    const double ms =
        std::chrono::duration<double, std::milli>(
            now - sentAt[static_cast<std::size_t>(seq)])
            .count();
    arrivals.emplace_back(seq, ms);
  });
  for (int i = 0; i < count; ++i) {
    sentAt[static_cast<std::size_t>(i)] = Clock::now();
    tx->send(rx->address(), std::to_string(i));
  }
  net.awaitQuiescent(seconds(20));
  DelayStats stats;
  std::scoped_lock lock(mutex);
  std::vector<double> delays;
  int last = -1;
  for (const auto& [seq, ms] : arrivals) {
    delays.push_back(ms);
    if (seq < last) ++stats.reordered;
    last = std::max(last, seq);
  }
  if (delays.empty()) return stats;
  std::sort(delays.begin(), delays.end());
  double sum = 0;
  for (double d : delays) sum += d;
  stats.meanMs = sum / static_cast<double>(delays.size());
  stats.p50Ms = delays[delays.size() / 2];
  stats.p99Ms = delays[delays.size() * 99 / 100];
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  dapple::benchutil::BenchReport report("network");
  const int delayCount = quick ? 200 : 1000;
  const int fifoCount = quick ? 100 : 500;
  std::printf("=== E8: simulated WAN fidelity (paper §2.2) ===\n\n");
  std::printf("--- Delay distribution: configured vs measured (%d "
              "datagrams) ---\n",
              delayCount);
  std::printf("%-22s %9s %9s %9s %10s\n", "link (base+jitter)", "mean ms",
              "p50 ms", "p99 ms", "reordered");
  struct Config {
    microseconds base;
    microseconds jitter;
  };
  const std::vector<Config> configs = {
      {microseconds(500), microseconds(0)},
      {milliseconds(2), milliseconds(1)},
      {milliseconds(5), milliseconds(5)},
      {milliseconds(10), milliseconds(20)},
  };
  for (const auto& cfg : configs) {
    const DelayStats stats = measureRaw(cfg.base, cfg.jitter, delayCount, 3);
    std::printf("%6.1f + %-6.1f ms      %9.2f %9.2f %9.2f %10d\n",
                cfg.base.count() / 1000.0, cfg.jitter.count() / 1000.0,
                stats.meanMs, stats.p50Ms, stats.p99Ms, stats.reordered);
    report
        .row("delay/base_us=" + std::to_string(cfg.base.count()) +
             "/jitter_us=" + std::to_string(cfg.jitter.count()))
        .num("mean_ms", stats.meanMs)
        .num("p50_ms", stats.p50Ms)
        .num("p99_ms", stats.p99Ms)
        .num("reordered", stats.reordered);
  }
  std::printf("\nExpected: mean ~ base + jitter/2; p99 ~ base + jitter; "
              "reordering grows\nwith jitter (delays are independent per "
              "message, §3.2).\n\n");

  std::printf("--- Per-channel FIFO: raw datagrams vs the channel layer "
              "---\n");
  std::printf("%-22s %12s %14s\n", "jitter", "raw reorders",
              "channel reorders");
  const std::vector<milliseconds> jitters =
      quick ? std::vector<milliseconds>{milliseconds(0), milliseconds(2)}
            : std::vector<milliseconds>{milliseconds(0), milliseconds(2),
                                        milliseconds(10)};
  for (auto jitter : jitters) {
    // Raw.
    const DelayStats raw = measureRaw(milliseconds(1), jitter, fifoCount, 4);
    // Through the reliable layer.
    SimNetwork net(5);
    net.setDefaultLink(LinkParams{milliseconds(1), jitter, 0.0, 0.0});
    ReliableConfig cfg;
    cfg.tickInterval = milliseconds(2);
    cfg.rto = milliseconds(30);
    ReliableEndpoint tx(net.open(), cfg);
    ReliableEndpoint rx(net.open(), cfg);
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<int> got;
    rx.setDeliver(
        [&](const NodeAddress&, std::uint64_t, std::string_view payload) {
          std::scoped_lock lock(mutex);
          got.push_back(std::stoi(std::string(payload)));
          cv.notify_all();
        });
    for (int i = 0; i < fifoCount; ++i) {
      tx.send(rx.address(), 1, std::to_string(i));
    }
    int channelReorders = 0;
    {
      std::unique_lock lock(mutex);
      cv.wait_for(lock, seconds(30), [&] {
        return got.size() >= static_cast<std::size_t>(fifoCount);
      });
      for (std::size_t i = 1; i < got.size(); ++i) {
        if (got[i] < got[i - 1]) ++channelReorders;
      }
    }
    std::printf("%6.0f ms              %12d %14d\n",
                std::chrono::duration<double, std::milli>(jitter).count(),
                raw.reordered, channelReorders);
    report.row("fifo/jitter_ms=" + std::to_string(jitter.count()))
        .num("raw_reorders", raw.reordered)
        .num("channel_reorders", channelReorders);
  }
  std::printf("\nExpected: raw reordering grows with jitter; the channel "
              "layer always shows 0\n(\"messages sent along a channel are "
              "delivered in the order sent\").\n");
  return 0;
}
