// Experiment F3 (DESIGN.md): Figure 3's outbox/inbox binding model.
//
// Part 1 reproduces Figure 3's exact 5-dapplet topology (dapplet 1's outbox
// bound to dapplet 3's inbox; dapplet 2's outbox bound to the inboxes of
// dapplets 3, 4 and 5) and checks the delivery semantics.
// Part 2 sweeps outbox fan-out K and reports per-send cost and aggregate
// delivery throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <memory>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"

using namespace dapple;

namespace {

// Data-path wire codec for every rig (--codec binary flips it; see E14).
WireCodec gCodec = WireCodec::kText;

DappletConfig codecCfg() {
  DappletConfig cfg;
  cfg.wireCodec = gCodec;
  return cfg;
}

/// Figure 3, literally.
void runFigure3() {
  SimNetwork net(1);
  std::vector<std::unique_ptr<Dapplet>> d;
  for (int i = 1; i <= 5; ++i) {
    d.push_back(std::make_unique<Dapplet>(net, "d" + std::to_string(i)));
  }
  Inbox& in3 = d[2]->createInbox("in");
  Inbox& in4 = d[3]->createInbox("in");
  Inbox& in5 = d[4]->createInbox("in");
  Outbox& out1 = d[0]->createOutbox();  // dapplet 1 outbox -> dapplet 3
  Outbox& out2 = d[1]->createOutbox();  // dapplet 2 outbox -> dapplets 3,4,5
  out1.add(in3.ref());
  out2.add(in3.ref());
  out2.add(in4.ref());
  out2.add(in5.ref());

  DataMessage from1("from-d1");
  DataMessage from2("from-d2");
  out1.send(from1);
  out2.send(from2);

  int d3got = 0;
  for (int i = 0; i < 2; ++i) {
    (void)in3.receiveFor(seconds(5));
    ++d3got;
  }
  (void)in4.receiveFor(seconds(5));
  (void)in5.receiveFor(seconds(5));
  std::printf("Figure 3 topology: d3 received %d messages (from d1 and d2), "
              "d4 and d5 one each — as drawn.\n\n",
              d3got);
  for (auto& dd : d) dd->stop();
}

struct FanoutRig {
  explicit FanoutRig(int fanout) : net(2) {
    sender = std::make_unique<Dapplet>(net, "sender", codecCfg());
    out = &sender->createOutbox();
    for (int i = 0; i < fanout; ++i) {
      receivers.push_back(
          std::make_unique<Dapplet>(net, "r" + std::to_string(i), codecCfg()));
      Inbox& in = receivers.back()->createInbox("in");
      inboxes.push_back(&in);
      out->add(in.ref());
    }
  }

  ~FanoutRig() {
    sender->stop();
    for (auto& r : receivers) r->stop();
  }

  SimNetwork net;
  std::unique_ptr<Dapplet> sender;
  Outbox* out = nullptr;
  std::vector<std::unique_ptr<Dapplet>> receivers;
  std::vector<Inbox*> inboxes;
};

void BM_FanoutSend(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  FanoutRig rig(fanout);
  DataMessage msg("bench");
  msg.set("payload", Value(std::string(64, 'x')));
  std::int64_t sent = 0;
  for (auto _ : state) {
    rig.out->send(msg);
    ++sent;
    // Consume to keep queues bounded.
    for (Inbox* in : rig.inboxes) (void)in->receiveFor(seconds(5));
  }
  state.counters["copies/s"] = benchmark::Counter(
      static_cast<double>(sent * fanout), benchmark::Counter::kIsRate);
  state.counters["fanout"] = fanout;
}

BENCHMARK(BM_FanoutSend)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ManyToOneInbox(benchmark::State& state) {
  // The dual direction: K outboxes bound to ONE inbox.
  const int senders = static_cast<int>(state.range(0));
  SimNetwork net(3);
  Dapplet receiver(net, "rx", codecCfg());
  Inbox& in = receiver.createInbox("shared");
  std::vector<std::unique_ptr<Dapplet>> txs;
  std::vector<Outbox*> outs;
  for (int i = 0; i < senders; ++i) {
    txs.push_back(
        std::make_unique<Dapplet>(net, "tx" + std::to_string(i), codecCfg()));
    Outbox& out = txs.back()->createOutbox();
    out.add(in.ref());
    outs.push_back(&out);
  }
  DataMessage msg("m");
  for (auto _ : state) {
    for (Outbox* out : outs) out->send(msg);
    for (int i = 0; i < senders; ++i) (void)in.receiveFor(seconds(5));
  }
  state.counters["senders"] = senders;
  receiver.stop();
  for (auto& t : txs) t->stop();
}

BENCHMARK(BM_ManyToOneInbox)->Arg(1)->Arg(4)->Arg(16)->Arg(48)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  gCodec = dapple::benchutil::codecFlag(argc, argv);
  std::printf("=== F3: outbox/inbox binding (paper Figure 3, codec=%s) ===\n",
              wireCodecName(gCodec));
  runFigure3();
  const int rc = dapple::benchutil::runBenchmarks("fanout", argc, argv);
  if (rc != 0) return rc;
  return 0;
}
