// Experiment E1 (DESIGN.md): cost of the ordering layer (paper §3.2: UDP
// plus "a layer to ensure that messages are delivered in the order they
// were sent").
//
// Sweeps datagram loss probability and compares the raw transport (loses
// messages, may reorder) against the reliable layer (delivers everything,
// in order, at the price of retransmissions and delay).  Expected shape:
// reliable completion time grows with the loss rate (retransmission
// round-trips), raw "throughput" is flat but lossy.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/reliable/reliable.hpp"
#include "dapple/util/time.hpp"

using namespace dapple;

namespace {

int kMessages = 400;  // shrunk under --quick

// Frame-head wire codec for the reliable endpoints (--codec binary; E14).
WireCodec gCodec = WireCodec::kText;

struct RawResult {
  int delivered = 0;
  int reordered = 0;
  double wallMs = 0;
};

RawResult runRaw(double loss, std::uint64_t seed) {
  SimNetwork net(seed);
  net.setDefaultLink(
      LinkParams{microseconds(200), microseconds(400), loss, 0.0});
  auto tx = net.open();
  auto rx = net.open();
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> got;
  rx->setHandler([&](const NodeAddress&, std::string_view payload) {
    std::scoped_lock lock(mutex);
    got.push_back(std::stoi(std::string(payload)));
    cv.notify_all();
  });
  Stopwatch watch;
  for (int i = 0; i < kMessages; ++i) {
    tx->send(rx->address(), std::to_string(i));
  }
  net.awaitQuiescent(seconds(10));
  RawResult result;
  result.wallMs = watch.elapsedSeconds() * 1e3;
  std::scoped_lock lock(mutex);
  result.delivered = static_cast<int>(got.size());
  for (std::size_t i = 1; i < got.size(); ++i) {
    if (got[i] < got[i - 1]) ++result.reordered;
  }
  return result;
}

struct ReliableResult {
  double wallMs = 0;
  std::uint64_t retransmits = 0;
  bool fifo = true;
};

ReliableResult runReliable(double loss, std::uint64_t seed) {
  SimNetwork net(seed);
  net.setDefaultLink(
      LinkParams{microseconds(200), microseconds(400), loss, 0.0});
  ReliableConfig cfg;
  cfg.tickInterval = milliseconds(2);
  cfg.rto = milliseconds(8);
  cfg.maxRto = milliseconds(100);
  cfg.codec = gCodec;
  ReliableEndpoint tx(net.open(), cfg);
  ReliableEndpoint rx(net.open(), cfg);
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> got;
  rx.setDeliver(
      [&](const NodeAddress&, std::uint64_t, std::string_view payload) {
        std::scoped_lock lock(mutex);
        got.push_back(std::stoi(std::string(payload)));
        cv.notify_all();
      });
  Stopwatch watch;
  for (int i = 0; i < kMessages; ++i) {
    tx.send(rx.address(), 1, std::to_string(i));
  }
  {
    std::unique_lock lock(mutex);
    cv.wait_for(lock, seconds(30),
                [&] { return got.size() >= static_cast<std::size_t>(kMessages); });
  }
  ReliableResult result;
  result.wallMs = watch.elapsedSeconds() * 1e3;
  result.retransmits = tx.stats().retransmits;
  std::scoped_lock lock(mutex);
  for (int i = 0; i < kMessages; ++i) {
    if (got[static_cast<std::size_t>(i)] != i) result.fifo = false;
  }
  return result;
}

struct AckEconomy {
  std::uint64_t delivered = 0;
  std::uint64_t ackDatagrams = 0;  ///< standalone ACK frames on the wire
  std::uint64_t acksCoalesced = 0;
  double acksPerMsg = 0;
};

/// E1b: ack datagram economy under light loss.  `coalesce=false` reproduces
/// the historical ack-per-frame behaviour (flush threshold 1, no delay, no
/// piggyback); `coalesce=true` is the shipping default.
AckEconomy runAckEconomy(bool coalesce, std::uint64_t seed) {
  SimNetwork net(seed);
  net.setDefaultLink(
      LinkParams{microseconds(200), microseconds(400), 0.01, 0.0});
  ReliableConfig cfg;
  cfg.tickInterval = milliseconds(2);
  cfg.rto = milliseconds(8);
  cfg.maxRto = milliseconds(100);
  cfg.codec = gCodec;
  cfg.ackEvery = coalesce ? 8 : 1;
  cfg.ackDelay = coalesce ? milliseconds(2) : milliseconds(0);
  cfg.ackPiggyback = coalesce;
  ReliableEndpoint tx(net.open(), cfg);
  ReliableEndpoint rx(net.open(), cfg);
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t got = 0;
  rx.setDeliver([&](const NodeAddress&, std::uint64_t, std::string_view) {
    std::scoped_lock lock(mutex);
    ++got;
    cv.notify_all();
  });
  for (int i = 0; i < kMessages; ++i) {
    tx.send(rx.address(), 1, std::to_string(i));
  }
  {
    std::unique_lock lock(mutex);
    cv.wait_for(lock, seconds(30), [&] {
      return got >= static_cast<std::size_t>(kMessages);
    });
  }
  tx.flush(seconds(10));
  const ReliableEndpoint::Stats rs = rx.stats();
  AckEconomy result;
  result.delivered = rs.delivered;
  result.ackDatagrams = rs.ackFramesSent;
  result.acksCoalesced = rs.acksCoalesced;
  result.acksPerMsg =
      rs.delivered == 0
          ? 0
          : static_cast<double>(rs.ackFramesSent) /
                static_cast<double>(rs.delivered);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  if (quick) kMessages = 100;
  gCodec = dapple::benchutil::codecFlag(argc, argv);
  dapple::benchutil::BenchReport report("reliable");
  std::printf("=== E1: ordering-layer overhead vs raw datagrams (codec=%s) "
              "===\n",
              wireCodecName(gCodec));
  std::printf("%d messages, 0.2ms base delay + 0.4ms jitter per link.\n\n",
              kMessages);
  std::printf("%-7s | %-28s | %-36s\n", "", "raw UDP-like datagrams",
              "reliable ordered layer");
  std::printf("%-7s | %9s %9s %8s | %9s %12s %6s %6s\n", "loss%",
              "delivered", "reorder", "ms", "ms", "retransmits", "fifo",
              "all");
  std::printf("--------+------------------------------+---------------------"
              "-----------------\n");
  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.01, 0.05, 0.10, 0.20};
  for (double loss : losses) {
    const RawResult raw = runRaw(loss, 7);
    const ReliableResult rel = runReliable(loss, 7);
    std::printf("%-7.0f | %9d %9d %8.1f | %9.1f %12llu %6s %6s\n",
                loss * 100, raw.delivered, raw.reordered, raw.wallMs,
                rel.wallMs,
                static_cast<unsigned long long>(rel.retransmits),
                rel.fifo ? "yes" : "NO!", "yes");
    report.row("loss_pct=" + std::to_string(static_cast<int>(loss * 100)))
        .num("raw_delivered", raw.delivered)
        .num("raw_reordered", raw.reordered)
        .num("raw_ms", raw.wallMs)
        .num("reliable_ms", rel.wallMs)
        .num("retransmits", static_cast<double>(rel.retransmits))
        .num("fifo", rel.fifo ? 1 : 0);
  }
  std::printf("\nExpected shape: raw loses ~loss%% of messages and reorders "
              "under jitter;\nthe reliable layer always delivers all %d in "
              "FIFO order, with completion\ntime and retransmissions "
              "growing with the loss rate.\n",
              kMessages);

  std::printf("\n=== E1b: ack coalescing economy (1%% loss) ===\n");
  const AckEconomy legacy = runAckEconomy(false, 11);
  const AckEconomy coalesced = runAckEconomy(true, 11);
  const double ratio = coalesced.acksPerMsg > 0
                           ? legacy.acksPerMsg / coalesced.acksPerMsg
                           : 0;
  std::printf("%-22s %12s %12s %12s\n", "", "delivered", "ack dgrams",
              "acks/msg");
  std::printf("%-22s %12llu %12llu %12.3f\n", "ack-per-frame (legacy)",
              static_cast<unsigned long long>(legacy.delivered),
              static_cast<unsigned long long>(legacy.ackDatagrams),
              legacy.acksPerMsg);
  std::printf("%-22s %12llu %12llu %12.3f\n", "coalesced (default)",
              static_cast<unsigned long long>(coalesced.delivered),
              static_cast<unsigned long long>(coalesced.ackDatagrams),
              coalesced.acksPerMsg);
  std::printf("reduction: %.1fx fewer ack datagrams per delivered message "
              "(%llu arrivals folded)\n",
              ratio,
              static_cast<unsigned long long>(coalesced.acksCoalesced));
  report.row("ack_economy")
      .num("legacy_acks_per_msg", legacy.acksPerMsg)
      .num("coalesced_acks_per_msg", coalesced.acksPerMsg)
      .num("ack_reduction_ratio", ratio)
      .num("acks_coalesced", static_cast<double>(coalesced.acksCoalesced));
  return 0;
}
