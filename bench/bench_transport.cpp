// E10: adaptive transport vs fixed-RTO baseline across a loss x delay
// matrix (DESIGN.md §11, EXPERIMENTS.md E10).
//
// Each cell runs the same paced workload twice over a simulated link:
//
//  * "fixed"    — the pre-adaptive sender, reproduced purely through
//                 ReliableConfig pinning: minRto == rto == maxRto (no
//                 estimator effect), a window far above the offered load
//                 (no congestion control), fast retransmit disabled.
//  * "adaptive" — the default config: per-peer Jacobson RTO, slow-start +
//                 AIMD window, duplicate-SACK fast retransmit.
//
// The whole matrix runs under the virtual clock, so a cell with 20 ms link
// delay and seconds of virtual traffic costs milliseconds of wall time and
// the numbers are independent of host load.  Goodput is measured in
// *virtual* time: total messages over the span from first send to the
// delivery of the last message at the receiving application.
//
// Each cell is averaged over several seeds: the seeded link RNG's
// draw-to-datagram assignment depends on thread interleaving, so a single
// lossy run is noisy run-to-run even in virtual time.  Per-cell keys are
// therefore *informational* (goodput_msg_rate, retx_overhead_pct,
// efficiency_gain_x, ...).  Only the whole-matrix aggregate row carries
// gated "*_ratio" keys for bench_compare.py — a geometric-mean goodput
// ratio and an all-cells retransmit-efficiency gain, both stable enough
// to regress-test at the 10% threshold.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/reliable/reliable.hpp"
#include "dapple/testkit/virtual_clock.hpp"
#include "dapple/util/time.hpp"

namespace {

using namespace dapple;

std::int64_t usOf(Duration d) {
  return std::chrono::duration_cast<microseconds>(d).count();
}

struct CellResult {
  double elapsedMs = 0;     // virtual ms, first send -> all acked
  double goodputPerS = 0;   // messages per virtual second
  double overhead = 0;      // retransmitBytes / dataBytes
  ReliableEndpoint::Stats stats;
  ReliableEndpoint::PeerProbe peer;
};

constexpr std::size_t kPayloadBytes = 256;
constexpr int kChunk = 8;                       // messages per pacing step
const Duration kChunkGap = milliseconds(5);     // offered ~1600 msg/s

/// The old sender, expressed as configuration: one fixed timeout, no
/// window, no fast retransmit (reliable.hpp documents this recipe).
ReliableConfig fixedRtoConfig() {
  ReliableConfig cfg;
  cfg.rto = milliseconds(40);
  cfg.minRto = cfg.rto;
  cfg.maxRto = cfg.rto;
  cfg.initialCwnd = 1u << 20;
  cfg.maxCwnd = 1u << 20;
  cfg.fastRetransmitDups = UINT32_MAX;
  cfg.deliveryTimeout = seconds(60);
  return cfg;
}

ReliableConfig adaptiveConfig() {
  ReliableConfig cfg;  // the defaults ARE the adaptive transport
  cfg.deliveryTimeout = seconds(60);
  return cfg;
}

/// One sender/receiver pair over one link shape; returns the cell metrics.
CellResult runCell(const ReliableConfig& cfg, double loss, Duration delay,
                   int messages, std::uint64_t seed) {
  testkit::VirtualClock clock;
  CellResult out;
  {
    SimNetwork::Options opts;
    opts.clock = &clock;
    SimNetwork net(seed, opts);
    net.setDefaultLink(LinkParams{
        std::chrono::duration_cast<microseconds>(delay), microseconds(0),
        loss, 0.0});
    ReliableEndpoint sender(net.openAt(1), cfg, nullptr, &clock);
    ReliableEndpoint receiver(net.openAt(2), cfg, nullptr, &clock);

    // Completion is timestamped on the delivery thread (a clocked worker),
    // so `elapsed` is the exact virtual instant the last message reached
    // the application — independent of how late the driving (guest) thread
    // happens to wake.
    const TimePoint start = clock.now();
    std::atomic<std::int64_t> doneUs{-1};
    std::atomic<int> delivered{0};
    receiver.setDeliver([&, start](const NodeAddress&, std::uint64_t,
                                   std::string_view) {
      if (delivered.fetch_add(1) + 1 == messages) {
        doneUs.store(usOf(clock.now() - start));
      }
    });

    // Pace the offered load from the clock's scheduler thread: each burst
    // fires at an exact virtual time (time is paused while the callback
    // runs).  Driving from this guest thread instead would race the
    // scheduler — a quiescent instant mid-burst lets the clock leap a few
    // retransmit ticks ahead, which skews the pacing by run-to-run noise.
    const std::string payload(kPayloadBytes, 'x');
    for (int k = 0; k * kChunk < messages; ++k) {
      const int burst = std::min(kChunk, messages - k * kChunk);
      clock.at(start + milliseconds(1) + k * kChunkGap, [&, burst] {
        for (int i = 0; i < burst; ++i) {
          sender.send(receiver.address(), 1, payload);
        }
      });
    }

    // Wait for full delivery (worker-timestamped), then drain the ack tail
    // so the sender stats are final.
    while (doneUs.load() < 0) clock.sleepFor(milliseconds(5));
    const ReliableEndpoint::FlushOutcome fl = sender.flushEx(seconds(120));
    if (fl != ReliableEndpoint::FlushOutcome::kFlushed) {
      std::fprintf(stderr, "bench_transport: flush outcome %d at loss=%g\n",
                   static_cast<int>(fl), loss);
    }

    out.stats = sender.stats();
    out.peer = sender.probePeer(receiver.address());
    out.elapsedMs = static_cast<double>(doneUs.load()) / 1000.0;
    out.goodputPerS = out.elapsedMs > 0
                          ? messages / (out.elapsedMs / 1000.0)
                          : 0.0;
    out.overhead =
        out.stats.dataBytes > 0
            ? static_cast<double>(out.stats.retransmitBytes) /
                  static_cast<double>(out.stats.dataBytes)
            : 0.0;
    sender.close();
    receiver.close();
  }  // network down before the clock
  return out;
}

std::string cellName(double loss, Duration delay) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "loss=%g%%/delay=%" PRId64 "ms",
                loss * 100.0, static_cast<std::int64_t>(
                                  usOf(delay) / 1000));
  return buf;
}

}  // namespace

namespace {

/// Rep-averaged metrics for one (cell, sender) pair.
struct CellAvg {
  double elapsedMs = 0;
  double goodput = 0;
  double overhead = 0;
  double retransmits = 0;
  double fastRetransmits = 0;
  double rttSamples = 0;
  double srttUs = 0;
  std::uint64_t dataBytes = 0;
  std::uint64_t retxBytes = 0;
};

CellAvg average(const std::vector<CellResult>& runs, int messages) {
  CellAvg avg;
  for (const CellResult& r : runs) {
    avg.elapsedMs += r.elapsedMs;
    avg.retransmits += static_cast<double>(r.stats.retransmits);
    avg.fastRetransmits += static_cast<double>(r.stats.fastRetransmits);
    avg.rttSamples += static_cast<double>(r.stats.rttSamples);
    avg.srttUs += static_cast<double>(usOf(r.peer.srtt));
    avg.dataBytes += r.stats.dataBytes;
    avg.retxBytes += r.stats.retransmitBytes;
  }
  const double n = static_cast<double>(runs.size());
  avg.elapsedMs /= n;
  avg.retransmits /= n;
  avg.fastRetransmits /= n;
  avg.rttSamples /= n;
  avg.srttUs /= n;
  avg.goodput = avg.elapsedMs > 0 ? messages / (avg.elapsedMs / 1000.0) : 0;
  avg.overhead = avg.dataBytes > 0 ? static_cast<double>(avg.retxBytes) /
                                         static_cast<double>(avg.dataBytes)
                                   : 0;
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  // Quick trims seeds, not messages: a short run is dominated by the RTO
  // estimator's bootstrap transient and slow-start ramp, which makes the
  // 20 ms cells wildly noisy; a full-length single-seed run stays
  // representative.
  const int messages = 1600;
  const int reps = quick ? 1 : 5;

  const std::vector<double> losses = {0.0, 0.01, 0.05};
  const std::vector<Duration> delays = {milliseconds(1), milliseconds(20)};

  dapple::benchutil::BenchReport report("transport");
  std::printf("%-22s %-9s %12s %12s %10s %8s\n", "cell", "sender",
              "goodput/s", "elapsed_ms", "retx_pct", "fastrtx");

  // A floor of 1% overhead keeps efficiency gains finite in cells where
  // the adaptive sender retransmits nothing at all.
  const double kFloor = 0.01;
  double lnRatioSum = 0;                        // geomean accumulator
  int cellsCounted = 0;
  std::uint64_t fixedData = 0, fixedRetx = 0;   // all-cells byte totals
  std::uint64_t adaptData = 0, adaptRetx = 0;

  for (const Duration delay : delays) {
    for (const double loss : losses) {
      const std::string cell = cellName(loss, delay);
      std::vector<CellResult> fixedRuns, adaptiveRuns;
      for (int rep = 0; rep < reps; ++rep) {
        const std::uint64_t seed = 7 + 101 * static_cast<std::uint64_t>(rep);
        fixedRuns.push_back(
            runCell(fixedRtoConfig(), loss, delay, messages, seed));
        adaptiveRuns.push_back(
            runCell(adaptiveConfig(), loss, delay, messages, seed));
      }
      const CellAvg fixed = average(fixedRuns, messages);
      const CellAvg adaptive = average(adaptiveRuns, messages);

      for (const auto* r : {&fixed, &adaptive}) {
        const bool isFixed = r == &fixed;
        std::printf("%-22s %-9s %12.0f %12.1f %9.1f%% %8.1f\n",
                    cell.c_str(), isFixed ? "fixed" : "adaptive", r->goodput,
                    r->elapsedMs, r->overhead * 100.0, r->fastRetransmits);
        report.row(cell + (isFixed ? "/fixed" : "/adaptive"))
            .num("goodput_msg_rate", r->goodput)
            .num("elapsed_virtual_ms", r->elapsedMs)
            .num("retx_overhead_pct", r->overhead * 100.0)
            .num("retransmits", r->retransmits)
            .num("fast_retransmits", r->fastRetransmits)
            .num("rtt_samples", r->rttSamples)
            .num("srtt_us", r->srttUs);
      }

      const double effGain =
          (fixed.overhead + kFloor) / (adaptive.overhead + kFloor);
      const double goodputRatio =
          fixed.goodput > 0 ? adaptive.goodput / fixed.goodput : 0.0;
      report.row(cell + "/summary")
          .num("efficiency_gain_x", effGain)
          .num("goodput_vs_fixed_x", goodputRatio);
      std::printf("%-22s %-9s  efficiency gain %.2fx, goodput ratio %.3f\n",
                  cell.c_str(), "summary", effGain, goodputRatio);

      if (goodputRatio > 0) {
        lnRatioSum += std::log(goodputRatio);
        ++cellsCounted;
      }
      fixedData += fixed.dataBytes;
      fixedRetx += fixed.retxBytes;
      adaptData += adaptive.dataBytes;
      adaptRetx += adaptive.retxBytes;
    }
  }

  // The gated aggregates (see the header comment).
  const double aggGoodput =
      cellsCounted > 0 ? std::exp(lnRatioSum / cellsCounted) : 0.0;
  const double fixedOv =
      fixedData > 0
          ? static_cast<double>(fixedRetx) / static_cast<double>(fixedData)
          : 0.0;
  const double adaptOv =
      adaptData > 0
          ? static_cast<double>(adaptRetx) / static_cast<double>(adaptData)
          : 0.0;
  const double aggGain = (fixedOv + kFloor) / (adaptOv + kFloor);
  report.row("matrix/aggregate")
      .num("goodput_vs_fixed_ratio", aggGoodput)
      .num("efficiency_gain_ratio", aggGain);
  std::printf("%-22s %-9s  efficiency gain %.2fx, goodput geomean %.3f\n",
              "matrix/aggregate", "", aggGain, aggGoodput);
  return 0;
}
