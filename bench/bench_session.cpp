// Experiment F2 (DESIGN.md): Figure 2 — an initiator linking dapplets into
// a session via the address directory.
//
// Reports session-establishment latency (INVITE -> WIRE -> START complete)
// as a function of member count and WAN one-way delay.  Expected shape:
// latency ≈ 3 phase round-trips, roughly flat in N (phases run in
// parallel), dominated by the configured WAN delay.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/util/time.hpp"

using namespace dapple;

namespace {

double establishOnce(std::size_t members, microseconds delay,
                     std::uint64_t seed) {
  SimNetwork net(seed);
  net.setDefaultLink(LinkParams{delay, delay / 4, 0.0, 0.0});

  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  for (std::size_t i = 0; i < members; ++i) {
    const std::string name = "m" + std::to_string(i);
    // Spread members across simulated hosts.
    DappletConfig cfg;
    cfg.host = static_cast<std::uint32_t>(i + 2);
    dapplets.push_back(std::make_unique<Dapplet>(net, name, cfg));
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back()));
    agents.back()->registerApp("noop", [](SessionContext&) {});
    directory.put(name, agents.back()->controlRef());
  }
  Dapplet init(net, "initiator");
  Initiator initiator(init);

  Initiator::Plan plan;
  plan.app = "noop";
  plan.phaseTimeout = seconds(30);
  for (std::size_t i = 0; i < members; ++i) {
    plan.members.push_back(
        Initiator::member(directory, "m" + std::to_string(i), {"in"}));
  }
  // A ring topology so WIRE has real work to do.
  for (std::size_t i = 0; i < members; ++i) {
    plan.edges.push_back({"m" + std::to_string(i), "out",
                          "m" + std::to_string((i + 1) % members), "in"});
  }

  Stopwatch watch;
  auto result = initiator.establish(plan);
  const double ms = watch.elapsedSeconds() * 1e3;
  if (!result.ok) std::printf("  !! establishment failed\n");
  initiator.awaitCompletion(result.sessionId, seconds(30));
  initiator.terminate(result.sessionId);

  agents.clear();
  init.stop();
  for (auto& d : dapplets) d->stop();
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  dapple::benchutil::BenchReport report("session");
  const int reps = quick ? 1 : 3;
  std::printf("=== F2: session establishment (paper Figure 2) ===\n");
  std::printf("Initiator links N dapplets (ring topology) via the address "
              "directory.\nColumns: one-way WAN delay; cells: "
              "establishment latency in ms (median of %d).\n\n",
              reps);
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{2, 4}
            : std::vector<std::size_t>{2, 4, 8, 16, 32};
  const std::vector<microseconds> delays =
      quick ? std::vector<microseconds>{microseconds(0), milliseconds(2)}
            : std::vector<microseconds>{microseconds(0), milliseconds(2),
                                        milliseconds(10)};
  std::printf("%-8s", "members");
  for (auto d : delays) {
    std::printf("  delay=%-4lldms", static_cast<long long>(d.count() / 1000));
  }
  std::printf("\n");
  for (std::size_t n : sizes) {
    std::printf("%-8zu", n);
    for (auto d : delays) {
      std::vector<double> samples;
      for (int r = 0; r < reps; ++r) {
        samples.push_back(establishOnce(n, d, 42 + r));
      }
      std::sort(samples.begin(), samples.end());
      const double medianMs = samples[samples.size() / 2];
      std::printf("  %10.2f  ", medianMs);
      report
          .row("establish/members=" + std::to_string(n) +
               "/delay_ms=" + std::to_string(d.count() / 1000))
          .num("median_ms", medianMs);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: ~3 phase round-trips; grows slowly with N "
              "(phases are parallel), scales with WAN delay.\n");
  return 0;
}
