// Experiment E9 (DESIGN.md): totally-ordered multicast built on the clock
// service — throughput/latency vs group size, plus holdback depth, the
// observable cost of waiting for every member's timestamp to advance.
//
// Expected shape: delivery latency grows with group size (must hear from
// all members) and with WAN delay (one extra one-way for acks); ack
// traffic is N^2 per published message.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/services/clocks/causal_order.hpp"
#include "dapple/services/clocks/total_order.hpp"
#include "dapple/util/time.hpp"

using namespace dapple;

namespace {

struct Row {
  double publishToSelfDeliverMs = 0;
  double throughputPerSec = 0;
  std::uint64_t maxHoldback = 0;
};

Row run(std::size_t n, microseconds delay, int messages) {
  SimNetwork net(3 + n);
  net.setDefaultLink(LinkParams{delay, delay / 4, 0.0, 0.0});
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TotalOrderGroup>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    dapplets.push_back(
        std::make_unique<Dapplet>(net, "tb" + std::to_string(i)));
    groups.push_back(
        std::make_unique<TotalOrderGroup>(*dapplets.back(), "bench"));
  }
  std::vector<InboxRef> refs;
  for (auto& g : groups) refs.push_back(g->ref());
  for (std::size_t i = 0; i < n; ++i) groups[i]->attach(refs, i);

  // Latency: publish one message, time until self-delivery.
  Stopwatch latencyWatch;
  groups[0]->publish(Value(0));
  (void)groups[0]->take(seconds(30));
  const double latencyMs = latencyWatch.elapsedSeconds() * 1e3;

  // Throughput: member 0 publishes a stream; all members drain.
  Stopwatch watch;
  for (int k = 1; k <= messages; ++k) {
    groups[0]->publish(Value(k));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 1; k <= messages; ++k) {
      (void)groups[i]->take(seconds(60));
    }
  }
  Row row;
  row.publishToSelfDeliverMs = latencyMs;
  row.throughputPerSec =
      static_cast<double>(messages) / watch.elapsedSeconds();
  for (auto& g : groups) {
    row.maxHoldback = std::max(row.maxHoldback, g->stats().maxQueueDepth);
  }
  groups.clear();
  for (auto& d : dapplets) d->stop();
  return row;
}

/// Same workload through the cheaper causal ordering, for the ablation:
/// what does total order's all-members-must-ack rule cost?
Row runCausal(std::size_t n, microseconds delay, int messages) {
  SimNetwork net(7 + n);
  net.setDefaultLink(LinkParams{delay, delay / 4, 0.0, 0.0});
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<CausalGroup>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    dapplets.push_back(
        std::make_unique<Dapplet>(net, "cb" + std::to_string(i)));
    groups.push_back(
        std::make_unique<CausalGroup>(*dapplets.back(), "bench"));
  }
  std::vector<InboxRef> refs;
  for (auto& g : groups) refs.push_back(g->ref());
  for (std::size_t i = 0; i < n; ++i) groups[i]->attach(refs, i);

  Stopwatch latencyWatch;
  groups[0]->publish(Value(0));
  (void)groups[0]->take(seconds(30));
  const double latencyMs = latencyWatch.elapsedSeconds() * 1e3;

  Stopwatch watch;
  for (int k = 1; k <= messages; ++k) groups[0]->publish(Value(k));
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 1; k <= messages; ++k) (void)groups[i]->take(seconds(60));
  }
  Row row;
  row.publishToSelfDeliverMs = latencyMs;
  row.throughputPerSec =
      static_cast<double>(messages) / watch.elapsedSeconds();
  groups.clear();
  for (auto& d : dapplets) d->stop();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  dapple::benchutil::BenchReport report("totalorder");
  const int messages = quick ? 40 : 150;
  const std::vector<std::size_t> groupSizes =
      quick ? std::vector<std::size_t>{2, 4}
            : std::vector<std::size_t>{2, 4, 8};
  std::printf("=== E9: totally-ordered multicast (Lamport order, paper "
              "§4.2 / ref [8]) ===\n\n");
  std::printf("%-8s %-10s %16s %14s %12s\n", "members", "delay",
              "latency ms", "msgs/s", "max holdback");
  for (std::size_t n : groupSizes) {
    for (auto delay : {microseconds(0), microseconds(1000)}) {
      const Row row = run(n, delay, messages);
      std::printf("%-8zu %6.1f ms  %16.2f %14.0f %12llu\n", n,
                  delay.count() / 1000.0, row.publishToSelfDeliverMs,
                  row.throughputPerSec,
                  static_cast<unsigned long long>(row.maxHoldback));
      report
          .row("total/members=" + std::to_string(n) +
               "/delay_us=" + std::to_string(delay.count()))
          .num("latency_ms", row.publishToSelfDeliverMs)
          .num("msgs_per_s", row.throughputPerSec)
          .num("max_holdback", static_cast<double>(row.maxHoldback));
    }
  }
  std::printf("\nExpected shape: latency ~ 2 one-way delays (message + "
              "peer acks), growing\nmildly with membership; throughput "
              "falls as ack traffic scales with N^2.\n");

  std::printf("\n--- Ablation: causal order (no acks) vs total order ---\n");
  std::printf("%-8s %-10s %20s %20s\n", "members", "delay",
              "causal latency ms", "causal msgs/s");
  for (std::size_t n : groupSizes) {
    for (auto delay : {microseconds(0), microseconds(1000)}) {
      const Row row = runCausal(n, delay, messages);
      std::printf("%-8zu %6.1f ms  %20.2f %20.0f\n", n,
                  delay.count() / 1000.0, row.publishToSelfDeliverMs,
                  row.throughputPerSec);
      report
          .row("causal/members=" + std::to_string(n) +
               "/delay_us=" + std::to_string(delay.count()))
          .num("latency_ms", row.publishToSelfDeliverMs)
          .num("msgs_per_s", row.throughputPerSec);
    }
  }
  std::printf("\nExpected: causal delivery needs only the message itself "
              "(1 one-way delay,\nno ack round), so latency is ~half of "
              "total order's and throughput does not\npay the N^2 ack "
              "tax — the price is a weaker (partial) order.\n");
  return 0;
}
