// Experiments F1 + E2 (DESIGN.md): the calendar application of paper §2.1 /
// Figure 1, and the comparison the paper's introduction motivates — the
// concurrent session approach vs. "the traditional approach [where] the
// director ... call[s] each member of the committee repeatedly and
// negotiate[s] with each one in turn".
//
// Table 1: makespan and message counts vs committee size, identical
// calendars for all three protocols (flat session, hierarchical Figure-1
// session, sequential baseline) over a 2ms-delay simulated WAN.
// Expected shape: the session protocols' makespan stays near-flat in N
// (parallel rounds) while the sequential baseline grows linearly; message
// totals are comparable.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "dapple/apps/calendar.hpp"
#include "dapple/net/sim.hpp"

using namespace dapple;
using apps::CalendarBook;

namespace {

constexpr std::int64_t kHorizonDays = 40;
constexpr double kBusyProb = 0.5;
constexpr std::size_t kWindow = 20;
constexpr std::size_t kMaxRounds = 4;

struct Row {
  double flatMs = 0;
  double hierMs = 0;
  double seqMs = 0;
  std::int64_t flatMsgs = 0;
  std::int64_t seqMsgs = 0;
  std::int64_t day = -1;
  bool agree = true;
};

/// One full comparison at committee size n: all three protocols run against
/// byte-identical calendar workloads (fresh copies each time).
Row runSize(std::size_t n, std::uint64_t seed) {
  Row row;
  std::int64_t days[3] = {-2, -2, -2};
  for (int variant = 0; variant < 3; ++variant) {
    SimNetwork net(seed);
    net.setDefaultLink(
        LinkParams{milliseconds(2), microseconds(500), 0.0, 0.0});

    std::vector<std::string> names;
    std::vector<std::unique_ptr<Dapplet>> dapplets;
    std::vector<std::unique_ptr<StateStore>> stores;
    std::vector<std::unique_ptr<SessionAgent>> agents;
    Directory directory;
    Rng calendars(seed * 17 + 3);  // same calendars for every variant
    for (std::size_t i = 0; i < n; ++i) {
      names.push_back("m" + std::to_string(i));
      DappletConfig cfg;
      cfg.host = static_cast<std::uint32_t>(i % 3 + 2);  // three "sites"
      dapplets.push_back(std::make_unique<Dapplet>(net, names.back(), cfg));
      stores.push_back(std::make_unique<StateStore>());
      CalendarBook::populate(*stores.back(), calendars, kHorizonDays,
                             kBusyProb);
      SessionAgent::Config agentCfg;
      agentCfg.store = stores.back().get();
      agents.push_back(
          std::make_unique<SessionAgent>(*dapplets.back(), agentCfg));
      apps::registerCalendarApp(*agents.back());
      directory.put(names.back(), agents.back()->controlRef());
    }
    Dapplet director(net, "director");
    SessionAgent directorAgent(director);
    apps::registerCalendarApp(directorAgent);
    directory.put("director", directorAgent.controlRef());

    if (variant == 0) {  // flat session
      Initiator initiator(director);
      auto plan = apps::flatCalendarPlan(directory, "director", names, 0,
                                         kWindow, kMaxRounds);
      plan.phaseTimeout = seconds(30);
      Stopwatch watch;
      auto result = initiator.establish(plan);
      auto done = initiator.awaitCompletion(result.sessionId, seconds(60));
      row.flatMs = watch.elapsedSeconds() * 1e3;
      auto outcome = apps::parseOutcome(done.at("director"));
      row.flatMsgs = outcome.messages;
      days[0] = outcome.scheduled ? outcome.day : -1;
      initiator.terminate(result.sessionId);
    } else if (variant == 1) {  // hierarchical (Figure 1): 3 sites
      std::vector<std::unique_ptr<Dapplet>> secD;
      std::vector<std::unique_ptr<SessionAgent>> secA;
      std::vector<apps::Site> sites(3);
      for (int s = 0; s < 3; ++s) {
        const std::string secName = "sec" + std::to_string(s);
        DappletConfig cfg;
        cfg.host = static_cast<std::uint32_t>(s + 2);
        secD.push_back(std::make_unique<Dapplet>(net, secName, cfg));
        secA.push_back(std::make_unique<SessionAgent>(*secD.back()));
        apps::registerCalendarApp(*secA.back());
        directory.put(secName, secA.back()->controlRef());
        sites[s].secretary = secName;
      }
      for (std::size_t i = 0; i < n; ++i) {
        sites[i % 3].members.push_back(names[i]);
      }
      std::erase_if(sites,
                    [](const apps::Site& s) { return s.members.empty(); });
      Initiator initiator(director);
      auto plan = apps::hierCalendarPlan(directory, "director", sites, 0,
                                         kWindow, kMaxRounds);
      plan.phaseTimeout = seconds(30);
      Stopwatch watch;
      auto result = initiator.establish(plan);
      auto done = initiator.awaitCompletion(result.sessionId, seconds(60));
      row.hierMs = watch.elapsedSeconds() * 1e3;
      auto outcome = apps::parseOutcome(done.at("director"));
      days[1] = outcome.scheduled ? outcome.day : -1;
      initiator.terminate(result.sessionId);
      secA.clear();
      for (auto& d : secD) d->stop();
    } else {  // sequential baseline
      std::vector<std::unique_ptr<apps::CalendarRpcMember>> rpc;
      std::vector<InboxRef> refs;
      for (std::size_t i = 0; i < n; ++i) {
        rpc.push_back(std::make_unique<apps::CalendarRpcMember>(
            *dapplets[i], *stores[i]));
        refs.push_back(rpc.back()->ref());
      }
      apps::SequentialScheduler scheduler(director, refs);
      Stopwatch watch;
      auto outcome =
          scheduler.negotiate(0, kWindow, kMaxRounds, seconds(30));
      row.seqMs = watch.elapsedSeconds() * 1e3;
      row.seqMsgs = outcome.messages;
      days[2] = outcome.scheduled ? outcome.day : -1;
    }
    agents.clear();
    director.stop();
    for (auto& d : dapplets) d->stop();
  }
  row.day = days[0];
  row.agree = days[0] == days[1] && days[1] == days[2];
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dapple::benchutil::quickMode(argc, argv);
  dapple::benchutil::BenchReport report("calendar");
  std::printf("=== F1/E2: calendar scheduling — sessions vs the "
              "traditional sequential approach ===\n");
  std::printf("2ms WAN delay, %.0f%%-busy calendars, window %zu days, "
              "<=%zu rounds.\n\n",
              kBusyProb * 100, kWindow, kMaxRounds);
  std::printf("%-8s %10s %10s %10s %10s %10s %6s %6s\n", "members",
              "flat ms", "hier ms", "seq ms", "flat msgs", "seq msgs",
              "day", "agree");
  std::printf("---------------------------------------------------------"
              "--------------------\n");
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{3, 6}
            : std::vector<std::size_t>{3, 6, 9, 12, 18, 24};
  for (std::size_t n : sizes) {
    const Row row = runSize(n, 1000 + n);
    std::printf("%-8zu %10.1f %10.1f %10.1f %10lld %10lld %6lld %6s\n", n,
                row.flatMs, row.hierMs, row.seqMs,
                static_cast<long long>(row.flatMsgs),
                static_cast<long long>(row.seqMsgs),
                static_cast<long long>(row.day),
                row.agree ? "yes" : "NO!");
    report.row("schedule/members=" + std::to_string(n))
        .num("flat_ms", row.flatMs)
        .num("hier_ms", row.hierMs)
        .num("seq_ms", row.seqMs)
        .num("flat_msgs", static_cast<double>(row.flatMsgs))
        .num("seq_msgs", static_cast<double>(row.seqMsgs))
        .num("agree", row.agree ? 1 : 0);
  }
  std::printf("\nExpected shape: flat/hier makespan ~constant in N (one "
              "parallel query round\nplus confirm); sequential makespan "
              "grows ~linearly (one RTT per member per\nround); all three "
              "protocols pick the same earliest common day.\n");
  return 0;
}
